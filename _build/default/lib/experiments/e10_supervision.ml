(* E10 — partial failure and "aiming for not failing" (Section 5, and
   the Erlang AXD301 nine-nines citation in Section 1).

   A bank of 8 request-processing services is driven by 24 clients
   (every call guarded by a timeout — lost requests count as failures).
   A fault injector crashes random services at exponentially
   distributed intervals.  Three recovery postures: none (dead services
   stay dead), one_for_one supervision, one_for_all supervision.

   Availability = successful requests / issued; "nines" is
   -log10(1 - availability).  The Erlang claim is that supervision
   turns component crashes from outage into bounded request loss. *)

open Exp_common
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Rpc = Chorus.Rpc
module Supervisor = Chorus_kernel.Supervisor
module Faults = Chorus_workload.Faults
module Rng = Chorus_util.Rng

let nservices = 8

let nclients = 24

type posture = No_recovery | One_one | One_all

let posture_name = function
  | No_recovery -> "none (fail-stop)"
  | One_one -> "one_for_one"
  | One_all -> "one_for_all"

let service_body ep () =
  Fiber.spawn ~label:"svc" ~daemon:true (fun () ->
      Rpc.serve ep (fun v ->
          (* the handler has an internal scheduling point, so a crash
             can land mid-request and lose the in-flight work *)
          Fiber.work 150;
          Fiber.yield ();
          Fiber.work 150;
          v + 1))

let run_posture ~quick ~seed ~crash_interval posture =
  let ops = pick ~quick 400 2_000 in
  let result =
    run ~seed ~cores:32 (fun () ->
        let eps =
          Array.init nservices (fun i ->
              Rpc.endpoint ~label:(Printf.sprintf "svc-%d" i) ())
        in
        (* registry of the current incarnation of each service *)
        let current = Array.make nservices None in
        let start i =
          let f = service_body eps.(i) () in
          current.(i) <- Some f;
          f
        in
        let sup =
          match posture with
          | No_recovery ->
            Array.iteri (fun i _ -> ignore (start i)) eps;
            None
          | One_one | One_all ->
            let strategy =
              if posture = One_one then Supervisor.One_for_one
              else Supervisor.One_for_all
            in
            Some
              (Supervisor.start ~max_restarts:1_000_000 strategy
                 (List.init nservices (fun i ->
                      { Supervisor.cname = Printf.sprintf "svc-%d" i;
                        cstart = (fun () -> start i) })))
        in
        (* fault injection: kill a random live service *)
        let vic_rng = Rng.make (seed + 99) in
        let injector =
          Faults.start
            { Faults.mean_interval = crash_interval;
              crashes = pick ~quick 60 300;
              seed = seed + 7 }
            ~victims:(fun () ->
              current.(Rng.int vic_rng nservices))
        in
        ignore injector;
        (* clients: calls with timeouts; a timeout is a failed request *)
        let succeeded = ref 0 and failed = ref 0 in
        let clients =
          List.init nclients (fun c ->
              Fiber.spawn ~label:(Printf.sprintf "client-%d" c) (fun () ->
                  let rng = Rng.make (seed + c) in
                  for _ = 1 to ops do
                    Fiber.work 2_000;
                    let ep = eps.(Rng.int rng nservices) in
                    let reply = Chan.buffered 1 in
                    Chan.send ep (1, reply);
                    let ok =
                      Chan.choose
                        [ Chan.recv_case reply (fun _ -> true);
                          Chan.after 50_000 (fun () -> false) ]
                    in
                    if ok then incr succeeded else incr failed
                  done))
        in
        List.iter (fun f -> ignore (Fiber.join f)) clients;
        let restarts =
          match sup with Some s -> Supervisor.restarts s | None -> 0
        in
        (!succeeded, !failed, restarts))
  in
  fst result

let nines availability =
  if availability >= 1.0 then 9.9
  else -.log10 (1.0 -. availability)

let run ~quick ~seed =
  let t =
    Tablefmt.create
      ~title:
        "E10: availability under service crashes (8 services, 24 clients)"
      ~columns:
        [ ("crash interval", Tablefmt.Right);
          ("posture", Tablefmt.Left);
          ("ok", Tablefmt.Right);
          ("lost", Tablefmt.Right);
          ("availability", Tablefmt.Right);
          ("nines", Tablefmt.Right);
          ("restarts", Tablefmt.Right) ]
  in
  List.iter
    (fun crash_interval ->
      List.iter
        (fun posture ->
          let ok, lost, restarts =
            run_posture ~quick ~seed ~crash_interval posture
          in
          let avail = float_of_int ok /. float_of_int (ok + lost) in
          Tablefmt.add_row t
            [ string_of_int crash_interval;
              posture_name posture;
              string_of_int ok;
              string_of_int lost;
              Printf.sprintf "%.5f" avail;
              Tablefmt.cell_float (nines avail);
              string_of_int restarts ])
        [ No_recovery; One_one; One_all ])
    [ 400_000; 100_000; 25_000 ];
  [ t ]
