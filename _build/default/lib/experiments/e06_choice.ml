(* E6 — "Implementing choice effectively is always somewhat difficult"
   (Section 5).

   A fan-in server selects over k producer channels.  Two
   implementations of choice are compared as k grows: CML-style
   one-shot commitment (block once, first ready partner wins) and naive
   periodic re-polling.  Poll burns cycles while idle and adds half the
   poll interval of latency; commit pays a per-case registration cost.
   Reported: cycles per message and total busy cycles per message
   (the wasted-work signal). *)

open Exp_common
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan

let fanin ~strategy ~k ~msgs_per_producer ~gap ~seed =
  let (), stats =
    run ~seed ~cores:64 (fun () ->
        let chans = Array.init k (fun _ -> Chan.buffered 4) in
        let total = k * msgs_per_producer in
        let server =
          Fiber.spawn ~on:0 ~label:"fanin-server" (fun () ->
              for _ = 1 to total do
                let v =
                  Chan.choose ?strategy
                    (Array.to_list
                       (Array.map (fun c -> Chan.recv_case c (fun v -> v))
                          chans))
                in
                ignore v;
                Fiber.work 50
              done)
        in
        let producers =
          List.init k (fun i ->
              Fiber.spawn ~on:(1 + (i mod 63)) (fun () ->
                  for m = 1 to msgs_per_producer do
                    Fiber.work gap;
                    Chan.send chans.(i) m
                  done))
        in
        List.iter (fun f -> ignore (Fiber.join f)) producers;
        ignore (Fiber.join server))
  in
  let total = k * msgs_per_producer in
  let busy = Array.fold_left ( + ) 0 stats.Runstats.busy in
  (float_of_int stats.Runstats.makespan /. float_of_int total,
   float_of_int busy /. float_of_int total)

let run ~quick ~seed =
  let msgs = pick ~quick 100 600 in
  let t =
    Tablefmt.create
      ~title:"E6: fan-in choice over k channels, commit vs poll(500cyc)"
      ~columns:
        [ ("k", Tablefmt.Right);
          ("commit cyc/msg", Tablefmt.Right);
          ("poll cyc/msg", Tablefmt.Right);
          ("commit busy/msg", Tablefmt.Right);
          ("poll busy/msg", Tablefmt.Right) ]
  in
  List.iter
    (fun k ->
      let c_lat, c_busy =
        fanin ~strategy:None ~k ~msgs_per_producer:msgs ~gap:800 ~seed
      in
      let p_lat, p_busy =
        fanin ~strategy:(Some (Chan.Poll 500)) ~k ~msgs_per_producer:msgs
          ~gap:800 ~seed
      in
      Tablefmt.add_row t
        [ string_of_int k;
          Tablefmt.cell_float c_lat;
          Tablefmt.cell_float p_lat;
          Tablefmt.cell_float c_busy;
          Tablefmt.cell_float p_busy ])
    [ 2; 4; 8; 16; 32; 64 ];
  [ t ]
