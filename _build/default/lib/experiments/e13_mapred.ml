(* E13 — shared-nothing scaling (Section 1): "Moving to the cloud, we
   also find that Map/Reduce is based on a shared-nothing model."

   The same word count over a core sweep, message shuffle vs shared
   hash table under sharded locks.  Both produce identical results
   (asserted); the scaling curves differ. *)

open Exp_common
module Mapred = Chorus_workload.Mapred

let config ~quick ~cores ~seed =
  { Mapred.chunks = max 8 (2 * cores);
    words_per_chunk = pick ~quick 120 500;
    vocabulary = 300;
    reducers = max 2 (cores / 4);
    lock_shards = max 2 (cores / 4);
    seed }

let run ~quick ~seed =
  let t =
    Tablefmt.create
      ~title:"E13: map/reduce word count, messages vs shared memory"
      ~columns:
        [ ("cores", Tablefmt.Right);
          ("msg makespan", Tablefmt.Right);
          ("shared makespan", Tablefmt.Right);
          ("msg/shared", Tablefmt.Right);
          ("results equal", Tablefmt.Left) ]
  in
  List.iter
    (fun cores ->
      let cfg = config ~quick ~cores ~seed in
      let mr, ms = run ~seed ~cores (fun () -> Mapred.run_messages cfg) in
      let sr, ss = run ~seed ~cores (fun () -> Mapred.run_shared cfg) in
      Tablefmt.add_row t
        [ string_of_int cores;
          string_of_int ms.Runstats.makespan;
          string_of_int ss.Runstats.makespan;
          Tablefmt.cell_float
            (float_of_int ms.Runstats.makespan
            /. float_of_int ss.Runstats.makespan);
          (if mr = sr then "yes" else "NO!") ])
    (List.filter (fun c -> c >= 4) (core_sweep ~quick));
  [ t ]
