(* E4 — channel plumbing (Section 3): "plumb a connection by passing
   around a channel to be used to carry data, and then afterwards move
   the data directly to its destination by a single send operation."

   Per-operation mean latency at 64 cores for three syscall paths:
   message kernel with plumbed file handles (data ops go straight to
   the vnode), message kernel with dispatcher routing (every op takes
   an extra kernel-entry hop), and the trap+locks baseline. *)

open Exp_common
module Fsload = Chorus_workload.Fsload
module Msgvfs = Chorus_kernel.Msgvfs
module Kernel = Chorus_kernel.Kernel
module Shvfs = Chorus_baseline.Shvfs

module Msg_load = Fsload.Make (Msgvfs)
module Sh_load = Fsload.Make (Shvfs)

let cores = 64

let load_config ~quick ~seed =
  { Fsload.default_config with
    clients = 32;
    ops_per_client = pick ~quick 60 400;
    files = 96;
    dirs = 12;
    io_size = 1024;
    theta = 0.6;
    think = 100;
    seed }

let msg_result ~plumbing ~quick ~seed =
  let cfg = load_config ~quick ~seed in
  let result, _ =
    run ~seed ~cores (fun () ->
        let kern =
          Kernel.boot
            { Kernel.default_config with
              fs = { Msgvfs.plumbing; dispatchers = 8 } }
        in
        Msg_load.setup (Kernel.fs_client kern) cfg;
        Msg_load.run_clients (fun _ -> Kernel.fs_client kern) cfg)
  in
  result

let lock_result ~quick ~seed =
  let cfg = load_config ~quick ~seed in
  let result, _ =
    run ~seed ~cores (fun () ->
        let sys = Shvfs.make Shvfs.default_config in
        Sh_load.setup (Shvfs.client sys) cfg;
        Sh_load.run_clients (fun _ -> Shvfs.client sys) cfg)
  in
  result

let ops = [ "read"; "write"; "stat"; "create" ]

let mean_for result name =
  match List.assoc_opt name result.Fsload.per_op with
  | Some h -> mean_cycles h
  | None -> nan

let run ~quick ~seed =
  let plumbed = msg_result ~plumbing:true ~quick ~seed in
  let routed = msg_result ~plumbing:false ~quick ~seed in
  let locked = lock_result ~quick ~seed in
  let t =
    Tablefmt.create
      ~title:"E4: mean op latency (cycles) at 64 cores, 32 clients"
      ~columns:
        [ ("op", Tablefmt.Left);
          ("msg plumbed", Tablefmt.Right);
          ("msg dispatched", Tablefmt.Right);
          ("lock kernel", Tablefmt.Right);
          ("plumb gain", Tablefmt.Right) ]
  in
  List.iter
    (fun name ->
      let p = mean_for plumbed name in
      let r = mean_for routed name in
      let l = mean_for locked name in
      Tablefmt.add_row t
        [ name;
          Tablefmt.cell_float p;
          Tablefmt.cell_float r;
          Tablefmt.cell_float l;
          Tablefmt.cell_float (r /. p) ])
    ops;
  [ t ]
