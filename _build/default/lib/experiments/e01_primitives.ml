(* E1 — "sending a message is an action comparable in scope to making a
   procedure call" (Section 3).

   Measures the cycle cost of each primitive by running N back-to-back
   operations and dividing the elapsed virtual time.  Message costs are
   reported at three distances (same core, neighbouring cores, opposite
   mesh corners) and as a multiple of the procedure call. *)

open Exp_common
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan

let n_ops ~quick = pick ~quick 2_000 20_000

(* cycles per iteration of [body], baseline-corrected by an empty loop *)
let per_op ~cores ~seed setup =
  let (), stats =
    run ~seed ~cores (fun () -> setup ())
  in
  stats.Runstats.makespan

let bench_loop n body =
  for _ = 1 to n do
    body ()
  done

let pingpong ~quick ~on_a ~on_b ~capacity cores =
  (* cycles per message for a ping-pong pair at a given distance *)
  let n = n_ops ~quick in
  let make () =
    if capacity = 0 then Chan.rendezvous () else Chan.buffered capacity
  in
  let elapsed =
    per_op ~cores ~seed:1 (fun () ->
        let req = make () and resp = make () in
        let _echo =
          Fiber.spawn ~on:on_b ~daemon:true (fun () ->
              let rec loop () =
                let v = Chan.recv req in
                Chan.send resp v;
                loop ()
              in
              loop ())
        in
        let f =
          Fiber.spawn ~on:on_a (fun () ->
              bench_loop n (fun () ->
                  Chan.send req 1;
                  ignore (Chan.recv resp)))
        in
        ignore (Fiber.join f))
  in
  (* two messages per round trip *)
  float_of_int elapsed /. float_of_int (2 * n)

let run ~quick ~seed =
  ignore seed;
  let n = n_ops ~quick in
  let cores = 64 in
  (* procedure call *)
  let call_cost =
    let elapsed =
      per_op ~cores ~seed:1 (fun () ->
          bench_loop n (fun () -> Fiber.call (fun () -> ())))
    in
    float_of_int elapsed /. float_of_int n
  in
  (* spawn + join of a trivial fiber *)
  let spawn_cost =
    let elapsed =
      per_op ~cores ~seed:1 (fun () ->
          bench_loop (n / 10) (fun () ->
              ignore (Fiber.join (Fiber.spawn ~on:0 (fun () -> ())))))
    in
    float_of_int elapsed /. float_of_int (n / 10)
  in
  let rendezvous_local = pingpong ~quick ~on_a:0 ~on_b:0 ~capacity:0 cores in
  let rendezvous_near = pingpong ~quick ~on_a:0 ~on_b:1 ~capacity:0 cores in
  let rendezvous_far = pingpong ~quick ~on_a:0 ~on_b:(cores - 1) ~capacity:0 cores in
  let buffered_near = pingpong ~quick ~on_a:0 ~on_b:1 ~capacity:16 cores in
  (* one-way buffered stream (sender never waits) *)
  let stream_cost =
    let elapsed =
      per_op ~cores ~seed:1 (fun () ->
          let c = Chan.buffered 64 in
          let consumer =
            Fiber.spawn ~on:1 (fun () ->
                for _ = 1 to n do
                  ignore (Chan.recv c)
                done)
          in
          let producer =
            Fiber.spawn ~on:0 (fun () ->
                for i = 1 to n do
                  Chan.send c i
                done)
          in
          ignore (Fiber.join producer);
          ignore (Fiber.join consumer))
    in
    float_of_int elapsed /. float_of_int n
  in
  let t =
    Tablefmt.create ~title:"E1: primitive costs (cycles per operation)"
      ~columns:
        [ ("primitive", Tablefmt.Left);
          ("cycles/op", Tablefmt.Right);
          ("x call", Tablefmt.Right) ]
  in
  let row name v =
    Tablefmt.add_row t
      [ name; Tablefmt.cell_float v; Tablefmt.cell_float (v /. call_cost) ]
  in
  row "procedure call" call_cost;
  row "rendezvous msg (same core)" rendezvous_local;
  row "rendezvous msg (1 hop)" rendezvous_near;
  row "rendezvous msg (far corner)" rendezvous_far;
  row "buffered msg rtt/2 (1 hop)" buffered_near;
  row "buffered stream (1 hop)" stream_cost;
  row "fiber spawn+join" spawn_cost;
  [ t ]
