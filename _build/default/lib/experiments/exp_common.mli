(** Shared plumbing for the experiment harnesses. *)

module Machine = Chorus_machine.Machine
module Policy = Chorus_sched.Policy
module Tablefmt = Chorus_util.Tablefmt
module Histogram = Chorus_util.Histogram
module Runstats = Chorus.Runstats

val machine : ?hw:bool -> int -> Machine.t
(** Mesh machine with [cores] cores; [hw] selects the
    hardware-message-support cost preset. *)

val run :
  ?policy:Policy.t -> ?seed:int -> ?hw:bool -> cores:int ->
  (unit -> 'a) -> 'a * Runstats.t
(** Run a program on a fresh engine (round-robin placement by
    default — experiments want spreading unless stated). *)

val run_machine :
  ?policy:Policy.t -> ?seed:int -> Machine.t -> (unit -> 'a) ->
  'a * Runstats.t
(** As {!run} but on an explicit machine (topology/cost ablations). *)

val pick : quick:bool -> int -> int -> int
(** [pick ~quick q f] is [q] in quick mode, [f] in full mode. *)

val ops_per_mcycle : Runstats.t -> int -> float

val mean_cycles : Chorus_util.Histogram.t -> float

val core_sweep : quick:bool -> int list
(** 1..1024 powers of two (1..256 in quick mode). *)
