(* E16 — topology ablation.

   The paper is agnostic about what the interconnect of a
   hundreds-of-cores chip looks like.  The same 64-core file-server
   load runs on a crossbar (uniform 1 hop), a mesh, a ring (long
   average paths), and a 2-die hierarchy (cheap clusters, expensive
   die crossings); reported with the observed mean hop count per
   message.  The message kernel's sensitivity to hop distance is the
   flip side of its locality opportunities. *)

open Exp_common
module Topology = Chorus_machine.Topology
module Cost = Chorus_machine.Cost
module Fsload = Chorus_workload.Fsload
module Msgvfs = Chorus_kernel.Msgvfs
module Kernel = Chorus_kernel.Kernel

module Msg_load = Fsload.Make (Msgvfs)

let load_config ~quick ~seed =
  { Fsload.default_config with
    clients = 56;
    ops_per_client = pick ~quick 40 200;
    files = 128;
    dirs = 16;
    io_size = 256;
    theta = 0.7;
    think = 300;
    seed }

let run ~quick ~seed =
  let t =
    Tablefmt.create
      ~title:"E16: topology ablation (message kernel, 64 cores)"
      ~columns:
        [ ("topology", Tablefmt.Left);
          ("diameter", Tablefmt.Right);
          ("ops/Mcyc", Tablefmt.Right);
          ("mean hops/msg", Tablefmt.Right);
          ("remote frac %", Tablefmt.Right) ]
  in
  let shapes =
    [ ("crossbar-64", Topology.Crossbar 64);
      ("mesh-8x8", Topology.Mesh (8, 8));
      ("ring-64", Topology.Ring 64);
      ("hier-2x4x8", Topology.Hierarchy (2, 4, 8)) ]
  in
  List.iter
    (fun (name, shape) ->
      let topo = Topology.make shape in
      let m = Machine.make topo Cost.software_messages in
      let cfg = load_config ~quick ~seed in
      let result, stats =
        run_machine ~seed m (fun () ->
            let kern = Kernel.boot Kernel.default_config in
            Msg_load.setup (Kernel.fs_client kern) cfg;
            Msg_load.run_clients (fun _ -> Kernel.fs_client kern) cfg)
      in
      let mean_hops =
        if stats.Runstats.msgs = 0 then 0.0
        else float_of_int stats.Runstats.hops /. float_of_int stats.Runstats.msgs
      in
      let remote_frac =
        if stats.Runstats.msgs = 0 then 0.0
        else
          100.0 *. float_of_int stats.Runstats.remote_msgs
          /. float_of_int stats.Runstats.msgs
      in
      Tablefmt.add_row t
        [ name;
          string_of_int (Topology.diameter topo);
          Tablefmt.cell_float (Fsload.throughput result);
          Tablefmt.cell_float mean_hops;
          Tablefmt.cell_float remote_frac ])
    shapes;
  [ t ]
