(* E11 — peer vs hierarchical structure (Section 3.1): "Peer
   subsystems can be structured to send messages back and forth on a
   peer basis, instead of requiring a false hierarchical relationship.
   This is particularly desirable for GUI programming."

   Same interactive workload, two structures; the app-initiated
   update latency is where the hierarchy hurts (updates wait for the
   display loop to poll). *)

open Exp_common
module Gui = Chorus_workload.Gui
module Histogram = Chorus_util.Histogram

let config ~quick =
  { Gui.default_config with
    input_events = pick ~quick 150 1_000;
    app_updates = pick ~quick 150 1_000 }

let run ~quick ~seed =
  let cfg = config ~quick in
  let peer, _ = run ~seed ~cores:8 (fun () -> Gui.run_peer cfg) in
  let hier, _ = run ~seed ~cores:8 (fun () -> Gui.run_hierarchical cfg) in
  let t =
    Tablefmt.create
      ~title:"E11: GUI structure, app-initiated update latency (cycles)"
      ~columns:
        [ ("structure", Tablefmt.Left);
          ("update mean", Tablefmt.Right);
          ("update p99", Tablefmt.Right);
          ("input mean", Tablefmt.Right);
          ("transfers", Tablefmt.Right) ]
  in
  let row name (r : Gui.result) =
    Tablefmt.add_row t
      [ name;
        Tablefmt.cell_float (mean_cycles r.Gui.update_latency);
        string_of_int (Histogram.percentile r.Gui.update_latency 99.0);
        Tablefmt.cell_float (mean_cycles r.Gui.input_latency);
        string_of_int r.Gui.control_transfers ]
  in
  row "peer (channels + choice)" peer;
  row "hierarchical (callbacks+poll)" hier;
  [ t ]
