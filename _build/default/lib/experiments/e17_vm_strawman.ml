(* E17 — the paper's conclusion strawman (Section 6): "The likely
   alternative is the thoroughly unsatisfying and inefficient approach
   of turning such a chip into a cluster of hundreds of apparently
   separate virtual machines, with a few cores each, running
   unmodified existing OSes."

   We build that alternative and price it.  The same 64-core chip runs
   the same skewed file workload two ways:

   - single system image: the message kernel, one vnode tree, clients
     reach any file directly through plumbed channels;
   - VM cluster: the chip is partitioned into 8 isolated 8-core "VMs",
     each running its own unmodified lock kernel over a private slice
     of the files; a client whose request targets another VM's slice
     must cross a virtual network (the {!Chorus_net} fabric) to a file
     server in the owning VM.

   With a shared working set, most accesses are remote for the
   cluster, each paying stack + wire + server costs; the single image
   pays on-chip messages.  The sweep over access skew shows when (if
   ever) the strawman is tolerable: only when the workload happens to
   partition perfectly. *)

open Exp_common
module Fiber = Chorus.Fiber
module Rng = Chorus_util.Rng
module Zipf = Chorus_util.Zipf
module Fsspec = Chorus_fsspec.Fsspec
module Msgvfs = Chorus_kernel.Msgvfs
module Kernel = Chorus_kernel.Kernel
module Shvfs = Chorus_baseline.Shvfs
module Fabric = Chorus_net.Fabric
module Stack = Chorus_net.Stack

let cores = 64

let nvms = 8

let files = 128

let io_size = 256

let ops_per_client ~quick = pick ~quick 40 200

let nclients = 48

let path_of i = Printf.sprintf "/dir%d/file%d" (i mod 8) i

(* --------------------------------------------------------------- *)
(* Single system image: the message kernel                          *)

let single_image ~quick ~seed ~theta =
  let ops = ops_per_client ~quick in
  let (), stats =
    run ~seed ~cores (fun () ->
        let kern = Kernel.boot Kernel.default_config in
        let setup = Kernel.fs_client kern in
        for d = 0 to 7 do
          match Msgvfs.mkdir setup (Printf.sprintf "/dir%d" d) with
          | Ok () -> ()
          | Error e -> failwith (Fsspec.err_to_string e)
        done;
        for i = 0 to files - 1 do
          (match Msgvfs.create setup (path_of i) with
          | Ok () -> ()
          | Error _ -> failwith "setup");
          match Msgvfs.open_ setup (path_of i) with
          | Ok fd ->
            ignore (Msgvfs.write setup fd ~off:0 (String.make 1024 'x'));
            ignore (Msgvfs.close setup fd)
          | Error _ -> failwith "setup"
        done;
        let zipf = Zipf.make ~n:files ~theta in
        let clients =
          List.init nclients (fun c ->
              Fiber.spawn (fun () ->
                  let fs = Kernel.fs_client kern in
                  let rng = Rng.make (seed + c) in
                  let fds = Hashtbl.create 8 in
                  for _ = 1 to ops do
                    Fiber.work 300;
                    let i = Zipf.sample zipf rng in
                    let fd =
                      match Hashtbl.find_opt fds i with
                      | Some fd -> fd
                      | None ->
                        let fd =
                          match Msgvfs.open_ fs (path_of i) with
                          | Ok fd -> fd
                          | Error _ -> failwith "open"
                        in
                        Hashtbl.replace fds i fd;
                        fd
                    in
                    ignore (Msgvfs.read fs fd ~off:0 ~len:io_size)
                  done))
        in
        List.iter (fun f -> ignore (Fiber.join f)) clients)
  in
  ops_per_mcycle stats (nclients * ops)

(* --------------------------------------------------------------- *)
(* VM cluster: private lock kernels + a virtual network              *)

let vm_cluster ~quick ~seed ~theta =
  let ops = ops_per_client ~quick in
  let (), stats =
    run ~seed ~cores (fun () ->
        let net = Fabric.create ~latency:10_000 () in
        (* each VM: its cores are [vm*8, vm*8+7]; a private lock-kernel
           filesystem holding its slice of the files; one file-server
           fiber reachable over the fabric *)
        let vm_fs = Array.init nvms (fun _ -> Shvfs.make Shvfs.default_config) in
        let vm_stack =
          Array.init nvms (fun _ -> Stack.create net (Fabric.attach net ()))
        in
        let home i = i mod nvms in
        (* populate each VM's slice *)
        Array.iteri
          (fun vm sys ->
            let fs = Shvfs.client sys in
            for d = 0 to 7 do
              ignore (Shvfs.mkdir fs (Printf.sprintf "/dir%d" d))
            done;
            for i = 0 to files - 1 do
              if home i = vm then begin
                ignore (Shvfs.create fs (path_of i));
                match Shvfs.open_ fs (path_of i) with
                | Ok fd ->
                  ignore (Shvfs.write fs fd ~off:0 (String.make 1024 'x'));
                  ignore (Shvfs.close fs fd)
                | Error _ -> failwith "setup"
              end
            done)
          vm_fs;
        (* per-VM file server: read requests arrive as "<file-id>" *)
        Array.iteri
          (fun vm stack ->
            ignore
              (Fiber.spawn ~on:(vm * 8) ~daemon:true (fun () ->
                   let fs = Shvfs.client vm_fs.(vm) in
                   let fds = Hashtbl.create 8 in
                   Stack.serve stack ~port:42 (fun ~src:_ req ->
                       let i = int_of_string req in
                       let fd =
                         match Hashtbl.find_opt fds i with
                         | Some fd -> fd
                         | None ->
                           let fd =
                             match Shvfs.open_ fs (path_of i) with
                             | Ok fd -> fd
                             | Error _ -> failwith "srv open"
                           in
                           Hashtbl.replace fds i fd;
                           fd
                       in
                       match Shvfs.read fs fd ~off:0 ~len:io_size with
                       | Ok data -> data
                       | Error _ -> ""))))
          vm_stack;
        let zipf = Zipf.make ~n:files ~theta in
        let clients =
          List.init nclients (fun c ->
              let vm = c mod nvms in
              Fiber.spawn ~on:((vm * 8) + 1 + (c / nvms mod 7)) (fun () ->
                  let fs = Shvfs.client vm_fs.(vm) in
                  let rng = Rng.make (seed + c) in
                  let fds = Hashtbl.create 8 in
                  for _ = 1 to ops do
                    Fiber.work 300;
                    let i = Zipf.sample zipf rng in
                    if home i = vm then begin
                      (* local: ordinary (trap+locks) syscall *)
                      let fd =
                        match Hashtbl.find_opt fds i with
                        | Some fd -> fd
                        | None ->
                          let fd =
                            match Shvfs.open_ fs (path_of i) with
                            | Ok fd -> fd
                            | Error _ -> failwith "open"
                          in
                          Hashtbl.replace fds i fd;
                          fd
                      in
                      ignore (Shvfs.read fs fd ~off:0 ~len:io_size)
                    end
                    else
                      (* remote: cross the virtual network *)
                      ignore
                        (Stack.call vm_stack.(vm)
                           ~dst:(Stack.addr vm_stack.(home i))
                           ~port:42 (string_of_int i))
                  done))
        in
        List.iter (fun f -> ignore (Fiber.join f)) clients)
  in
  ops_per_mcycle stats (nclients * ops)

let run ~quick ~seed =
  let t =
    Tablefmt.create
      ~title:
        "E17: one message kernel vs a chip partitioned into 8 VM islands"
      ~columns:
        [ ("workload skew", Tablefmt.Left);
          ("single image ops/Mcyc", Tablefmt.Right);
          ("VM cluster ops/Mcyc", Tablefmt.Right);
          ("single/cluster", Tablefmt.Right) ]
  in
  List.iter
    (fun (name, theta) ->
      let si = single_image ~quick ~seed ~theta in
      let vc = vm_cluster ~quick ~seed ~theta in
      Tablefmt.add_row t
        [ name;
          Tablefmt.cell_float si;
          Tablefmt.cell_float vc;
          Tablefmt.cell_float (si /. vc) ])
    [ ("uniform (theta=0)", 0.0);
      ("zipf 0.9", 0.9);
      ("zipf 1.2 (hot files)", 1.2) ];
  [ t ]
