(* E5 — blocking vs non-blocking send (Section 3): "Blocking send is
   easier to implement in a low-level environment (no buffering) and is
   more powerful; however, non-blocking send tends to be easier to use
   and, being less synchronous, is probably faster."

   A 4-stage pipeline is run with inter-stage channel capacity swept
   from 0 (rendezvous) upward, at two placements (neighbouring cores vs
   policy-spread on a 64-core mesh).  Throughput should rise with
   capacity and saturate; per-item latency tells the other side of the
   story. *)

open Exp_common
module Pipeline = Chorus_workload.Pipeline
module Histogram = Chorus_util.Histogram

let capacities = [ 0; 1; 4; 16; 64 ]

let run_one ~quick ~seed capacity =
  let cfg =
    { Pipeline.default_config with
      capacity;
      items = pick ~quick 500 4_000;
      stages = 4;
      work_per_stage = 250 }
  in
  let result, stats = run ~seed ~cores:64 (fun () -> Pipeline.run cfg) in
  let tput = ops_per_mcycle stats cfg.Pipeline.items in
  (tput, mean_cycles result.Pipeline.item_latency,
   Histogram.percentile result.Pipeline.item_latency 99.0)

let run ~quick ~seed =
  let t =
    Tablefmt.create
      ~title:
        "E5: pipeline vs channel capacity (0 = rendezvous/blocking send)"
      ~columns:
        [ ("capacity", Tablefmt.Right);
          ("items/Mcyc", Tablefmt.Right);
          ("mean latency", Tablefmt.Right);
          ("p99 latency", Tablefmt.Right) ]
  in
  List.iter
    (fun cap ->
      let tput, mean, p99 = run_one ~quick ~seed cap in
      Tablefmt.add_row t
        [ string_of_int cap;
          Tablefmt.cell_float tput;
          Tablefmt.cell_float mean;
          string_of_int p99 ])
    capacities;
  [ t ]
