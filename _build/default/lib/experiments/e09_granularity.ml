(* E9 — too much parallelism (Section 5): "one might build a virtual
   memory system with a thread for every page of physical memory in the
   system; that would produce too many threads no matter how many cores
   are available.  The risk is that there may be no clean intermediate
   design points between too many and too few threads."

   The VM service's pages-per-manager granularity is swept from 1
   (thread per page, pathological) to all pages in one manager (fully
   centralized).  16 fault-storm clients touch every page.  The U-curve
   — and how broad its bottom is — answers the paper's worry. *)

open Exp_common
module Fiber = Chorus.Fiber
module Vmserv = Chorus_kernel.Vmserv

let run_one ~seed ~pages granularity =
  let clients = 16 in
  let (_managers : int), stats =
    run ~seed ~cores:64 (fun () ->
        let vm =
          Vmserv.start ~pages_per_manager:granularity ~pages ~frames:pages ()
        in
        let per_client = pages / clients in
        let fibers =
          List.init clients (fun c ->
              Fiber.spawn (fun () ->
                  for i = 0 to per_client - 1 do
                    (* strided so clients hit all managers *)
                    let page = ((i * clients) + c) mod pages in
                    (match Vmserv.fault vm page with
                    | `Mapped | `Already -> ()
                    | `Oom -> failwith "unexpected OOM");
                    Fiber.work 100
                  done))
        in
        List.iter (fun f -> ignore (Fiber.join f)) fibers;
        Vmserv.managers vm)
  in
  stats

let run ~quick ~seed =
  let pages = pick ~quick 4_096 16_384 in
  let t =
    Tablefmt.create
      ~title:
        (Printf.sprintf
           "E9: VM fault storm (%d pages, 16 clients) vs service granularity"
           pages)
      ~columns:
        [ ("pages/manager", Tablefmt.Right);
          ("manager fibers", Tablefmt.Right);
          ("makespan", Tablefmt.Right);
          ("util %", Tablefmt.Right) ]
  in
  let emit g =
    let stats = run_one ~seed ~pages g in
    Tablefmt.add_row t
      [ string_of_int g;
        string_of_int ((pages + g - 1) / g);
        string_of_int stats.Runstats.makespan;
        Tablefmt.cell_float (100.0 *. stats.Runstats.utilization) ]
  in
  let rec sweep g =
    if g < pages then begin
      emit g;
      sweep (g * 4)
    end
    else emit pages
  in
  sweep 1;
  [ t ]
