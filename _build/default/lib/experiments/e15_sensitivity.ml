(* E15 — sensitivity of the headline result to message costs.

   Our substrate is a cost model, so the honest question is: how much
   of E3's conclusion depends on the message-cost constants?  The
   file-server comparison at 64 cores is repeated with the four
   message-cost fields scaled from 4x (pessimistic software messaging)
   down to 0.25x and the hardware-support preset; the lock kernel is
   re-run on the same machine as the reference (its syscalls don't use
   messages, but copies do, so it moves slightly too).

   The claim survives if the message kernel stays ahead across the
   whole plausible range — and where it stops being ahead is exactly
   the "how much hardware support does this need" answer the paper
   leaves open (Section 4). *)

open Exp_common
module Cost = Chorus_machine.Cost
module Topology = Chorus_machine.Topology
module Fsload = Chorus_workload.Fsload
module Msgvfs = Chorus_kernel.Msgvfs
module Kernel = Chorus_kernel.Kernel
module Shvfs = Chorus_baseline.Shvfs

module Msg_load = Fsload.Make (Msgvfs)
module Sh_load = Fsload.Make (Shvfs)

let cores = 64

let load_config ~quick ~seed =
  { Fsload.default_config with
    clients = 56;
    ops_per_client = pick ~quick 40 200;
    files = 128;
    dirs = 16;
    io_size = 256;
    theta = 0.7;
    think = 300;
    seed }

let machine_with costs =
  let w = 8 in
  Machine.make (Topology.make (Topology.Mesh (w, cores / w))) costs

let msg_tput ~quick ~seed m =
  let cfg = load_config ~quick ~seed in
  let result, _ =
    run_machine ~seed m (fun () ->
        let kern =
          Kernel.boot { Kernel.default_config with bcache_shards = 8 }
        in
        Msg_load.setup (Kernel.fs_client kern) cfg;
        Msg_load.run_clients (fun _ -> Kernel.fs_client kern) cfg)
  in
  Fsload.throughput result

let lock_tput ~quick ~seed m =
  let cfg = load_config ~quick ~seed in
  let result, _ =
    run_machine ~seed m (fun () ->
        let sys = Shvfs.make Shvfs.default_config in
        Sh_load.setup (Shvfs.client sys) cfg;
        Sh_load.run_clients (fun _ -> Shvfs.client sys) cfg)
  in
  Fsload.throughput result

let run ~quick ~seed =
  let t =
    Tablefmt.create
      ~title:
        "E15: message-cost sensitivity (file server, 64 cores, 56 clients)"
      ~columns:
        [ ("message costs", Tablefmt.Left);
          ("msg ops/Mcyc", Tablefmt.Right);
          ("lock ops/Mcyc", Tablefmt.Right);
          ("msg/lock", Tablefmt.Right) ]
  in
  let variants =
    [ ("software x4", Cost.scale_messages Cost.software_messages 4.0);
      ("software x2", Cost.scale_messages Cost.software_messages 2.0);
      ("software x1 (default)", Cost.software_messages);
      ("software x0.5", Cost.scale_messages Cost.software_messages 0.5);
      ("software x0.25", Cost.scale_messages Cost.software_messages 0.25);
      ("hardware support", Cost.hardware_messages) ]
  in
  List.iter
    (fun (name, costs) ->
      let m = machine_with costs in
      let msg = msg_tput ~quick ~seed m in
      let lock = lock_tput ~quick ~seed m in
      Tablefmt.add_row t
        [ name;
          Tablefmt.cell_float msg;
          Tablefmt.cell_float lock;
          Tablefmt.cell_float (msg /. lock) ])
    variants;
  [ t ]
