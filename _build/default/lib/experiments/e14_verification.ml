(* E14 — "the use of messages, channels, and defined protocols offers
   some potential for static verification using techniques developed
   for networking software" (Section 4).

   A portfolio of checks over the kernel's channel protocols:
   session-type duality (static), runtime monitors catching an injected
   misbehaving client (dynamic), and bounded exploration finding a
   seeded crossed-rendezvous deadlock that the runtime detector also
   catches live. *)

open Exp_common
module Ltype = Chorus_proto.Ltype
module Gtype = Chorus_proto.Gtype
module Monitor = Chorus_proto.Monitor
module Explore = Chorus_proto.Explore
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Engine = Chorus.Engine

(* the vnode data protocol, client side: requests then retire *)
let client_side =
  Ltype.loop "x"
    (Ltype.Send
       [ ("read", Ltype.recv "data" (Ltype.Var "x"));
         ("write", Ltype.recv "ack" (Ltype.Var "x"));
         ("retire", Ltype.recv "done" Ltype.End) ])

let server_side = Ltype.dual client_side

(* a buggy variant: the server forgets to acknowledge writes *)
let buggy_server =
  Ltype.loop "x"
    (Ltype.Recv
       [ ("read", Ltype.send "data" (Ltype.Var "x"));
         ("write", Ltype.Var "x");  (* missing ack! *)
         ("retire", Ltype.send "done" Ltype.End) ])

(* crossed rendezvous: two services each request from the other before
   answering — the textbook kernel-component deadlock *)
let crossed =
  (* each component commits to its outgoing request before serving
     incoming ones — exactly the coding error in [runtime_deadlock] *)
  { Explore.processes =
      [ { Explore.pname = "fs";
          start = 0;
          final = [ 2 ];
          transitions =
            [ (0, Explore.Send ("to_vm", "need_page"), 1);
              (1, Explore.Recv ("to_fs", "need_block"), 2) ] };
        { Explore.pname = "vm";
          start = 0;
          final = [ 2 ];
          transitions =
            [ (0, Explore.Send ("to_fs", "need_block"), 1);
              (1, Explore.Recv ("to_vm", "need_page"), 2) ] } ];
    channels =
      [ { Explore.cname = "to_vm"; capacity = 0 };
        { Explore.cname = "to_fs"; capacity = 0 } ] }

(* fixed version: requests go through buffered channels and each
   service answers before issuing its own request *)
let fixed =
  { Explore.processes =
      [ { Explore.pname = "fs";
          start = 0;
          final = [ 0 ];
          transitions =
            [ (0, Explore.Recv ("to_fs", "need_block"), 1);
              (1, Explore.Send ("from_fs", "block"), 0) ] };
        { Explore.pname = "vm";
          start = 0;
          final = [ 2 ];
          transitions =
            [ (0, Explore.Send ("to_fs", "need_block"), 1);
              (1, Explore.Recv ("from_fs", "block"), 2) ] } ];
    channels =
      [ { Explore.cname = "to_fs"; capacity = 0 };
        { Explore.cname = "from_fs"; capacity = 0 } ] }

type vmsg = Mread | Mwrite | Mdata | Mack | Mretire | Mdone

let label_of = function
  | Mread -> "read"
  | Mwrite -> "write"
  | Mdata -> "data"
  | Mack -> "ack"
  | Mretire -> "retire"
  | Mdone -> "done"

let monitor_catches ~seed =
  (* a monitored client that (incorrectly) sends two reads back to
     back without awaiting data *)
  let caught = ref false in
  let (), _ =
    run ~seed ~cores:2 (fun () ->
        let ch = Chan.unbounded () in
        let m =
          Monitor.create ~role:"client" ~spec:client_side ~label_of ch
        in
        (try
           Monitor.send m Mread;
           Monitor.send m Mread
         with Monitor.Violation _ -> caught := true);
        Chan.close ch)
  in
  !caught

let runtime_deadlock ~seed =
  (* the crossed-rendezvous bug, actually run: the engine's wait-for
     detector must fire *)
  try
    let (), _ =
      run ~seed ~cores:4 (fun () ->
          let to_vm = Chan.rendezvous () and to_fs = Chan.rendezvous () in
          let fs =
            Fiber.spawn ~label:"fs" (fun () ->
                Chan.send to_vm ();
                ignore (Chan.recv to_fs))
          in
          let vm =
            Fiber.spawn ~label:"vm" (fun () ->
                Chan.send to_fs ();
                ignore (Chan.recv to_vm))
          in
          (* both block sending on rendezvous channels no one reads *)
          ignore (Fiber.join fs);
          ignore (Fiber.join vm))
    in
    false
  with Engine.Deadlock _ -> true

(* the block-allocation choreography the kernel actually performs:
   a file vnode asks its cylinder-group allocator for a block; on a
   grant the vnode has the cache zero it (so stale data never leaks);
   on exhaustion the vnode is told to try elsewhere *)
let alloc_choreography =
  Gtype.msg "vnode" "cgalloc" "alloc"
    (Gtype.Choice
       { sender = "cgalloc";
         receiver = "vnode";
         branches =
           [ ("block",
              Gtype.msg "vnode" "bcache" "zero"
                (Gtype.msg "bcache" "vnode" "done" Gtype.End));
             ("empty", Gtype.msg "vnode" "bcache" "noop" Gtype.End) ] })

let run ~quick ~seed =
  ignore quick;
  let t =
    Tablefmt.create ~title:"E14: protocol verification portfolio"
      ~columns:
        [ ("check", Tablefmt.Left);
          ("verdict", Tablefmt.Left);
          ("detail", Tablefmt.Left) ]
  in
  let wf =
    match Ltype.well_formed client_side with
    | Ok () -> "well-formed"
    | Error e -> "ERROR: " ^ e
  in
  Tablefmt.add_row t [ "vnode protocol well-formed"; wf; Ltype.to_string client_side ];
  Tablefmt.add_row t
    [ "client vs server duality";
      (if Ltype.compatible client_side server_side then "compatible"
       else "INCOMPATIBLE");
      "dual up to unfolding" ];
  Tablefmt.add_row t
    [ "client vs buggy server";
      (if Ltype.compatible client_side buggy_server then "MISSED"
       else "rejected");
      "missing write ack detected statically" ];
  (match Explore.check crossed with
  | Explore.Deadlock { states_explored; trace; _ } ->
    Tablefmt.add_row t
      [ "crossed-rendezvous model";
        Printf.sprintf "deadlock found (%d states)" states_explored;
        String.concat " ; " trace ]
  | Explore.Ok_no_deadlock _ ->
    Tablefmt.add_row t [ "crossed-rendezvous model"; "MISSED"; "" ]
  | Explore.Budget_exhausted _ ->
    Tablefmt.add_row t [ "crossed-rendezvous model"; "budget exhausted"; "" ]);
  (match Explore.check fixed with
  | Explore.Ok_no_deadlock { states_explored } ->
    Tablefmt.add_row t
      [ "fixed model";
        Printf.sprintf "no deadlock (%d states)" states_explored;
        "request/answer ordering repaired" ]
  | Explore.Deadlock _ | Explore.Budget_exhausted _ ->
    Tablefmt.add_row t [ "fixed model"; "UNEXPECTED"; "" ]);
  (match Gtype.project_all alloc_choreography with
  | Some projs ->
    Tablefmt.add_row t
      [ "allocation choreography";
        Printf.sprintf "projects to %d roles" (List.length projs);
        String.concat "; "
          (List.map
             (fun (r, l) -> r ^ ": " ^ Ltype.to_string l)
             projs) ]
  | None ->
    Tablefmt.add_row t [ "allocation choreography"; "UNPROJECTABLE"; "" ]);
  Tablefmt.add_row t
    [ "runtime monitor";
      (if monitor_catches ~seed then "violation caught" else "MISSED");
      "double read without awaiting data" ];
  Tablefmt.add_row t
    [ "runtime wait-for detector";
      (if runtime_deadlock ~seed then "deadlock caught" else "MISSED");
      "live crossed rendezvous aborted with diagnostics" ];
  [ t ]
