(* E3 — the headline claim (Section 1): "conventional thread
   programming using locks and shared memory does not scale to hundreds
   of cores", while the shared-nothing message architecture keeps
   scaling.

   A file-server op mix runs on both kernels over a 1..1024-core sweep,
   one client fiber per core (minus a few cores reserved for services).
   Reported as throughput (ops per Mcycle) and speedup over the 1-core
   configuration of the same kernel.  The crossover core count — where
   the message kernel overtakes the lock kernel — is the figure's
   takeaway. *)

open Exp_common
module Fiber = Chorus.Fiber
module Fsload = Chorus_workload.Fsload
module Msgvfs = Chorus_kernel.Msgvfs
module Kernel = Chorus_kernel.Kernel
module Shvfs = Chorus_baseline.Shvfs

module Msg_load = Fsload.Make (Msgvfs)
module Sh_load = Fsload.Make (Shvfs)

let load_config ~quick ~cores ~seed =
  { Fsload.default_config with
    clients = max 1 (cores - (cores / 8) - 1);
    ops_per_client = pick ~quick 30 120;
    files = 128;
    dirs = 16;
    file_size = 4096;
    io_size = 256;
    theta = 0.7;
    think = 300;
    seed }

let msg_throughput ~quick ~seed cores =
  let cfg = load_config ~quick ~cores ~seed in
  let result, stats =
    run ~seed ~cores (fun () ->
        let kern =
          Kernel.boot
            { Kernel.default_config with
              bcache_shards = max 2 (cores / 8);
              cgroups = max 2 (cores / 16) }
        in
        let setup_fs = Kernel.fs_client kern in
        Msg_load.setup setup_fs cfg;
        Msg_load.run_clients (fun _ -> Kernel.fs_client kern) cfg)
  in
  (Fsload.throughput result, result, stats)

let lock_throughput ~quick ~seed cores =
  let cfg = load_config ~quick ~cores ~seed in
  let result, stats =
    run ~seed ~cores (fun () ->
        let sys = Shvfs.make Shvfs.default_config in
        let setup_fs = Shvfs.client sys in
        Sh_load.setup setup_fs cfg;
        Sh_load.run_clients (fun _ -> Shvfs.client sys) cfg)
  in
  (Fsload.throughput result, result, stats)

let run ~quick ~seed =
  let t =
    Tablefmt.create
      ~title:
        "E3: file-server throughput scaling, message kernel vs lock kernel"
      ~columns:
        [ ("cores", Tablefmt.Right);
          ("msg ops/Mcyc", Tablefmt.Right);
          ("lock ops/Mcyc", Tablefmt.Right);
          ("msg speedup", Tablefmt.Right);
          ("lock speedup", Tablefmt.Right);
          ("msg/lock", Tablefmt.Right) ]
  in
  let base_msg = ref 0.0 and base_lock = ref 0.0 in
  let crossover = ref None in
  List.iter
    (fun cores ->
      let msg, _, _ = msg_throughput ~quick ~seed cores in
      let lock, _, _ = lock_throughput ~quick ~seed cores in
      if cores = 1 then begin
        base_msg := msg;
        base_lock := lock
      end;
      if msg > lock && !crossover = None then crossover := Some cores;
      Tablefmt.add_row t
        [ string_of_int cores;
          Tablefmt.cell_float msg;
          Tablefmt.cell_float lock;
          Tablefmt.cell_float (msg /. !base_msg);
          Tablefmt.cell_float (lock /. !base_lock);
          Tablefmt.cell_float (msg /. lock) ])
    (core_sweep ~quick);
  let note =
    Tablefmt.create ~title:"E3: crossover"
      ~columns:[ ("finding", Tablefmt.Left) ]
  in
  Tablefmt.add_row note
    [ (match !crossover with
      | Some c ->
        Printf.sprintf
          "message kernel overtakes the lock kernel at %d cores" c
      | None -> "no crossover observed in this sweep") ];
  [ t; note ]
