(* E12 — the aggressive design (Section 4): applications on bare cores
   with service code linked in libOS fashion, vs the conservative
   message-kernel syscall path, vs the dispatcher-routed conservative
   variant.

   One syscall-heavy application (small ops, no think time).  The libOS
   pays procedure-call prices but gives up cross-application sharing;
   the message paths pay per-op messages. *)

open Exp_common
module Fsload = Chorus_workload.Fsload
module Msgvfs = Chorus_kernel.Msgvfs
module Kernel = Chorus_kernel.Kernel
module Libos = Chorus_kernel.Libos

module Msg_load = Fsload.Make (Msgvfs)
module Lib_load = Fsload.Make (Libos)

let load ~quick ~seed =
  { Fsload.default_config with
    clients = 1;
    ops_per_client = pick ~quick 300 3_000;
    files = 32;
    dirs = 4;
    file_size = 4096;
    io_size = 128;
    theta = 0.0;
    think = 0;
    seed }

let msg_run ~plumbing ~quick ~seed =
  let cfg = load ~quick ~seed in
  let result, stats =
    run ~seed ~cores:16 (fun () ->
        let kern =
          Kernel.boot
            { Kernel.default_config with
              fs = { Msgvfs.plumbing; dispatchers = 2 } }
        in
        Msg_load.setup (Kernel.fs_client kern) cfg;
        Msg_load.run_clients (fun _ -> Kernel.fs_client kern) cfg)
  in
  (result, stats)

let libos_run ~quick ~seed =
  let cfg = load ~quick ~seed in
  let result, stats =
    run ~seed ~cores:16 (fun () ->
        let fs = Libos.make () in
        Lib_load.setup fs cfg;
        Lib_load.run_clients (fun _ -> fs) cfg)
  in
  (result, stats)

let run ~quick ~seed =
  let t =
    Tablefmt.create
      ~title:"E12: libOS (aggressive) vs message syscalls (conservative)"
      ~columns:
        [ ("design", Tablefmt.Left);
          ("ops/Mcyc", Tablefmt.Right);
          ("mean op latency", Tablefmt.Right) ]
  in
  let row name ((result : Fsload.result), _stats) =
    Tablefmt.add_row t
      [ name;
        Tablefmt.cell_float (Fsload.throughput result);
        Tablefmt.cell_float (mean_cycles result.Fsload.latency) ]
  in
  row "libOS (linked, bare core)" (libos_run ~quick ~seed);
  row "msg kernel, plumbed" (msg_run ~plumbing:true ~quick ~seed);
  row "msg kernel, dispatched" (msg_run ~plumbing:false ~quick ~seed);
  [ t ]
