module Machine = Chorus_machine.Machine
module Policy = Chorus_sched.Policy
module Tablefmt = Chorus_util.Tablefmt
module Histogram = Chorus_util.Histogram
module Runstats = Chorus.Runstats
module Runtime = Chorus.Runtime

let machine ?(hw = false) cores =
  if hw then Machine.mesh_hw ~cores else Machine.mesh ~cores

let run_machine ?policy ?(seed = 42) m main =
  let policy =
    match policy with Some p -> p | None -> Policy.round_robin ()
  in
  Runtime.run_result (Runtime.config ~policy ~seed m) main

let run ?policy ?seed ?hw ~cores main =
  run_machine ?policy ?seed (machine ?hw cores) main

let pick ~quick q f = if quick then q else f

let ops_per_mcycle stats ops = Runstats.throughput stats ~ops

let mean_cycles h = Histogram.mean h

let core_sweep ~quick =
  let top = if quick then 256 else 1024 in
  let rec go c = if c > top then [] else c :: go (c * 2) in
  go 1
