(* E2 — system calls without mode transitions (Section 4), including
   the paper's supposition of native hardware message support and the
   FlexSC middle point it cites [22].

   A null syscall (fixed 100 cycles of kernel work) is issued N times
   through four mechanisms; reported as cycles per call (single client,
   latency) and completions per Mcycle with one client per core
   (throughput at 64 cores). *)

open Exp_common
module Fiber = Chorus.Fiber
module Rpc = Chorus.Rpc
module Trap = Chorus_baseline.Trap
module Flexsc = Chorus_baseline.Flexsc

let kernel_work = 100

type mech = Msg | Msg_hw | Trap_each | Flexsc_batch of int

let mech_name = function
  | Msg -> "message (sw)"
  | Msg_hw -> "message (hw support)"
  | Trap_each -> "trap per call"
  | Flexsc_batch n -> Printf.sprintf "flexsc batch=%d" n

(* one kernel service fiber per core handles message syscalls for the
   clients on nearby cores *)
let start_services cores =
  let nservice = max 1 (cores / 4) in
  Array.init nservice (fun i ->
      let ep = Rpc.endpoint ~label:(Printf.sprintf "sys-%d" i) () in
      ignore
        (Fiber.spawn ~on:(i * cores / nservice) ~daemon:true (fun () ->
             Rpc.serve ep (fun () -> Fiber.work kernel_work)));
      ep)

let client_loop mech services ~cores ~ops =
  match mech with
  | Msg | Msg_hw ->
    let me = Fiber.core (Fiber.self ()) in
    (* talk to the service responsible for this region of the mesh *)
    let ep =
      services.(min (Array.length services - 1)
                  (me * Array.length services / cores))
    in
    for _ = 1 to ops do
      Rpc.call ep ()
    done
  | Trap_each ->
    for _ = 1 to ops do
      Trap.syscall (fun () -> Fiber.work kernel_work)
    done
  | Flexsc_batch n ->
    let page = Flexsc.create ~batch:n () in
    for _ = 1 to ops do
      Flexsc.submit page (fun () -> Fiber.work kernel_work)
    done;
    Flexsc.flush page

let latency_of mech ~quick =
  let ops = pick ~quick 2_000 20_000 in
  let hw = mech = Msg_hw in
  let (), stats =
    run ~hw ~cores:64 (fun () ->
        let services =
          match mech with Msg | Msg_hw -> start_services 64 | _ -> [||]
        in
        let f = Fiber.spawn ~on:32 (fun () -> client_loop mech services ~cores:64 ~ops) in
        ignore (Fiber.join f))
  in
  float_of_int stats.Runstats.makespan /. float_of_int ops

let throughput_of mech ~quick =
  let cores = 64 in
  let clients = 48 in
  let ops = pick ~quick 200 1_000 in
  let hw = mech = Msg_hw in
  let (), stats =
    run ~hw ~cores (fun () ->
        let services =
          match mech with Msg | Msg_hw -> start_services cores | _ -> [||]
        in
        let fibers =
          List.init clients (fun i ->
              Fiber.spawn ~on:(8 + (i mod (cores - 8))) (fun () ->
                  client_loop mech services ~cores ~ops))
        in
        List.iter (fun f -> ignore (Fiber.join f)) fibers)
  in
  ops_per_mcycle stats (clients * ops)

let run ~quick ~seed =
  ignore seed;
  let mechs = [ Trap_each; Flexsc_batch 8; Flexsc_batch 32; Msg; Msg_hw ] in
  let t =
    Tablefmt.create
      ~title:
        "E2: null syscall (100-cycle kernel op) by entry mechanism, 64 cores"
      ~columns:
        [ ("mechanism", Tablefmt.Left);
          ("latency cyc", Tablefmt.Right);
          ("tput ops/Mcyc (48 clients)", Tablefmt.Right) ]
  in
  List.iter
    (fun m ->
      let lat = latency_of m ~quick in
      let tput = throughput_of m ~quick in
      Tablefmt.add_row t
        [ mech_name m; Tablefmt.cell_float lat; Tablefmt.cell_float tput ])
    mechs;
  [ t ]
