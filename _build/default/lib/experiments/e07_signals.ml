(* E7 — asynchronous notification (Section 3.1): with signals, a
   process working in the kernel "must abandon and unwind everything
   that was in progress ... then the process must restart the system
   call and redo all the work it just unwound.  This is unnecessarily
   wasteful."

   An application performs a stream of 5000-cycle system calls while
   I/O completions arrive asynchronously.  Three delivery mechanisms:

   - signal: interrupt, unwind, deliver, restart the syscall;
   - channel: a peer event fiber receives completions directly;
   - polling: the app checks a completion queue between syscalls.

   Reported: mean/p99 notification latency, wasted (redone) cycles, and
   total makespan for the same offered load. *)

open Exp_common
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Signals = Chorus_baseline.Signals
module Histogram = Chorus_util.Histogram
module Rng = Chorus_util.Rng

let syscall_work = 5_000

let completion_gap = 9_000

let n_syscalls ~quick = pick ~quick 200 1_500

let n_completions ~quick = pick ~quick 100 750

(* generates completions at (deterministically) jittered intervals *)
let generator ~quick ~seed emit =
  let rng = Rng.make seed in
  Fiber.spawn ~label:"device" ~daemon:true (fun () ->
      for i = 1 to n_completions ~quick do
        Fiber.sleep (completion_gap + Rng.int rng 2_000);
        emit i
      done)

let signals_run ~quick ~seed =
  let latency = Histogram.create () in
  let wasted = ref 0 in
  let (), stats =
    run ~seed ~cores:4 (fun () ->
        let proc = Signals.create () in
        let remaining = ref (n_completions ~quick) in
        let _gen =
          generator ~quick ~seed (fun _ ->
              let born = Fiber.now () in
              Signals.deliver proc ~handler:(fun () ->
                  decr remaining;
                  Histogram.record latency (Fiber.now () - born)))
        in
        let worker =
          Fiber.spawn ~label:"app" (fun () ->
              for _ = 1 to n_syscalls ~quick do
                Signals.interruptible_syscall proc ~work:syscall_work
              done;
              (* drain any completions that arrive after the syscall
                 stream finished *)
              while !remaining > 0 do
                Signals.wait_signal proc
              done)
        in
        ignore (Fiber.join worker);
        wasted := Signals.wasted_cycles proc)
  in
  (latency, !wasted, stats.Runstats.makespan)

let channel_run ~quick ~seed =
  let latency = Histogram.create () in
  let (), stats =
    run ~seed ~cores:4 (fun () ->
        let events = Chan.unbounded ~label:"completions" () in
        let _gen =
          generator ~quick ~seed (fun _ -> Chan.send events (Fiber.now ()))
        in
        (* a peer fiber owns notification; the worker is never
           disturbed *)
        let watcher =
          Fiber.spawn ~label:"watcher" (fun () ->
              for _ = 1 to n_completions ~quick do
                let born = Chan.recv events in
                Histogram.record latency (Fiber.now () - born)
              done)
        in
        let worker =
          Fiber.spawn ~label:"app" (fun () ->
              for _ = 1 to n_syscalls ~quick do
                Fiber.work syscall_work
              done)
        in
        ignore (Fiber.join worker);
        ignore (Fiber.join watcher))
  in
  (latency, 0, stats.Runstats.makespan)

let polling_run ~quick ~seed =
  let latency = Histogram.create () in
  let (), stats =
    run ~seed ~cores:4 (fun () ->
        let events = Chan.unbounded ~label:"completions" () in
        let _gen =
          generator ~quick ~seed (fun _ -> Chan.send events (Fiber.now ()))
        in
        let seen = ref 0 in
        let worker =
          Fiber.spawn ~label:"app" (fun () ->
              let poll () =
                let rec drain () =
                  match Chan.try_recv events with
                  | Some born ->
                    incr seen;
                    Histogram.record latency (Fiber.now () - born);
                    drain ()
                  | None -> ()
                in
                drain ()
              in
              for _ = 1 to n_syscalls ~quick do
                Fiber.work syscall_work;
                (* a syscall boundary is a scheduling point *)
                Fiber.yield ();
                poll ()
              done;
              while !seen < n_completions ~quick do
                Fiber.sleep 1_000;
                poll ()
              done)
        in
        ignore (Fiber.join worker))
  in
  (latency, 0, stats.Runstats.makespan)

let run ~quick ~seed =
  let t =
    Tablefmt.create
      ~title:
        "E7: async I/O-completion delivery during in-kernel work"
      ~columns:
        [ ("mechanism", Tablefmt.Left);
          ("mean latency", Tablefmt.Right);
          ("p99 latency", Tablefmt.Right);
          ("wasted cycles", Tablefmt.Right);
          ("makespan", Tablefmt.Right) ]
  in
  let row name (latency, wasted, makespan) =
    Tablefmt.add_row t
      [ name;
        Tablefmt.cell_float (mean_cycles latency);
        string_of_int (Histogram.percentile latency 99.0);
        string_of_int wasted;
        string_of_int makespan ]
  in
  row "signal (unwind+restart)" (signals_run ~quick ~seed);
  row "channel (peer fiber)" (channel_run ~quick ~seed);
  row "polling between syscalls" (polling_run ~quick ~seed);
  [ t ]
