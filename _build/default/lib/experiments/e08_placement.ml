(* E8 — "deciding which threads to place on which cores ... is likely
   to present a new range of difficulties" (Section 5).

   Two workload shapes on a 64-core mesh under each placement policy:
   a deep pipeline (communication-bound: wants neighbours together) and
   a fork/join fan-out of independent work (CPU-bound: wants
   spreading).  No policy wins both — the difficulty the paper
   predicts. *)

open Exp_common
module Fiber = Chorus.Fiber
module Pipeline = Chorus_workload.Pipeline

let pipeline_makespan ~quick ~seed policy =
  let cfg =
    { Pipeline.default_config with
      stages = 16;
      items = pick ~quick 300 2_000;
      work_per_stage = 150;
      capacity = 4;
      (* the affinity policy needs keys to act on; other policies
         ignore them *)
      pair_affinity = Chorus_sched.Policy.name policy = "affinity" }
  in
  let result, stats =
    run ~policy ~seed ~cores:64 (fun () -> Pipeline.run cfg)
  in
  ignore result;
  stats

let forkjoin_makespan ~quick ~seed policy =
  let tasks = pick ~quick 256 1_024 in
  let (), stats =
    run ~policy ~seed ~cores:64 (fun () ->
        let fibers =
          List.init tasks (fun _ -> Fiber.spawn (fun () -> Fiber.work 5_000))
        in
        List.iter (fun f -> ignore (Fiber.join f)) fibers)
  in
  stats

let run ~quick ~seed =
  let t =
    Tablefmt.create
      ~title:"E8: placement policies on a 64-core mesh (lower is better)"
      ~columns:
        [ ("policy", Tablefmt.Left);
          ("pipeline makespan", Tablefmt.Right);
          ("pipe util %", Tablefmt.Right);
          ("forkjoin makespan", Tablefmt.Right);
          ("fj util %", Tablefmt.Right);
          ("fj steals", Tablefmt.Right) ]
  in
  List.iter
    (fun policy_name ->
      (* fresh policy instance per workload run (stateful counters) *)
      let find () =
        List.find
          (fun p -> Chorus_sched.Policy.name p = policy_name)
          (Chorus_sched.Policy.all ())
      in
      let ps = pipeline_makespan ~quick ~seed (find ()) in
      let fs = forkjoin_makespan ~quick ~seed (find ()) in
      Tablefmt.add_row t
        [ policy_name;
          string_of_int ps.Runstats.makespan;
          Tablefmt.cell_float (100.0 *. ps.Runstats.utilization);
          string_of_int fs.Runstats.makespan;
          Tablefmt.cell_float (100.0 *. fs.Runstats.utilization);
          string_of_int fs.Runstats.steals ])
    (List.map Chorus_sched.Policy.name (Chorus_sched.Policy.all ()));
  [ t ]
