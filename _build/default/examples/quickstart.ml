(* Quickstart: the lightweight messages-and-channels model in one
   page — fibers, the three channel flavours, choice, and RPC, on a
   simulated 16-core mesh.

   Run with:  dune exec examples/quickstart.exe *)

module Machine = Chorus_machine.Machine
module Runtime = Chorus.Runtime
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Rpc = Chorus.Rpc

let () =
  let cfg = Runtime.config ~seed:1 (Machine.mesh ~cores:16) in
  let stats =
    Runtime.run cfg (fun () ->
        (* 1. start a fiber: the paper's `start { foo(); }` *)
        let greeter =
          Fiber.spawn (fun () ->
              Printf.printf "[%8d] hello from fiber %d on core %d\n"
                (Fiber.now ())
                (Fiber.id (Fiber.self ()))
                (Fiber.core (Fiber.self ())))
        in
        ignore (Fiber.join greeter);

        (* 2. rendezvous channel: `c <- v` blocks until `v <- c` *)
        let c = Chan.rendezvous ~label:"numbers" () in
        let producer =
          Fiber.spawn (fun () ->
              for i = 1 to 3 do
                Chan.send c i
              done)
        in
        for _ = 1 to 3 do
          Printf.printf "[%8d] received %d\n" (Fiber.now ()) (Chan.recv c)
        done;
        ignore (Fiber.join producer);

        (* 3. channels through channels: plumb a private data channel
           via a control channel, then stream directly *)
        let control = Chan.rendezvous ~label:"control" () in
        let _server =
          Fiber.spawn ~daemon:true (fun () ->
              let data = Chan.recv control in
              for i = 1 to 5 do
                Chan.send data (i * i)
              done;
              Chan.close data)
        in
        let data = Chan.buffered ~label:"data" 2 in
        Chan.send control data;
        let rec drain sum =
          match Chan.recv data with
          | v -> drain (sum + v)
          | exception Chan.Closed -> sum
        in
        Printf.printf "[%8d] plumbed stream summed to %d\n" (Fiber.now ())
          (drain 0);

        (* 4. choice: take whichever source is ready first, with a
           timeout arm *)
        let fast = Chan.rendezvous () and slow = Chan.rendezvous () in
        let _f =
          Fiber.spawn ~daemon:true (fun () ->
              Fiber.sleep 1_000;
              Chan.send fast "fast source")
        in
        let _s =
          Fiber.spawn ~daemon:true (fun () ->
              Fiber.sleep 50_000;
              Chan.send slow "slow source")
        in
        let winner =
          Chan.choose
            [ Chan.recv_case fast (fun s -> s);
              Chan.recv_case slow (fun s -> s);
              Chan.after 100_000 (fun () -> "timeout") ]
        in
        Printf.printf "[%8d] choice picked: %s\n" (Fiber.now ()) winner;

        (* 5. a function call is a message pair (paper Section 3) *)
        let double = Rpc.endpoint ~label:"double" () in
        let _svc =
          Fiber.spawn ~daemon:true (fun () -> Rpc.serve double (fun x -> 2 * x))
        in
        Printf.printf "[%8d] rpc double(21) = %d\n" (Fiber.now ())
          (Rpc.call double 21))
  in
  Printf.printf "\nrun complete: %d virtual cycles, %d messages (%d remote)\n"
    stats.Chorus.Runstats.makespan stats.Chorus.Runstats.msgs
    stats.Chorus.Runstats.remote_msgs
