examples/fileserver.ml: Chorus Chorus_kernel Chorus_machine Chorus_sched Chorus_util Chorus_workload List Printf
