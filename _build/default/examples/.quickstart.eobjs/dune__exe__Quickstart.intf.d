examples/quickstart.mli:
