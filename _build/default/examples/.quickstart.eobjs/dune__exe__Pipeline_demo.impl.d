examples/pipeline_demo.ml: Chorus Chorus_machine Chorus_sched Chorus_util Chorus_workload List Option Printf
