examples/netkv_cluster.ml: Chorus Chorus_machine Chorus_net Chorus_sched List Printf
