examples/netkv_cluster.mli:
