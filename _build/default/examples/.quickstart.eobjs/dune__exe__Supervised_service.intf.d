examples/supervised_service.mli:
