examples/gui_peer.mli:
