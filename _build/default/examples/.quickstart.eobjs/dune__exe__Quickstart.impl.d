examples/quickstart.ml: Chorus Chorus_machine Printf
