examples/gui_peer.ml: Chorus Chorus_machine Chorus_util Chorus_workload Option Printf
