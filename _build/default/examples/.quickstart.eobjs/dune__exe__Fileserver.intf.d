examples/fileserver.mli:
