examples/supervised_service.ml: Chorus Chorus_kernel Chorus_machine Hashtbl List Printf
