(* Fileserver: boot the full message-passing kernel on a 64-core mesh,
   run a skewed file-server workload against its vnode-per-fiber VFS,
   and print per-op latency plus kernel internals.

   Run with:  dune exec examples/fileserver.exe *)

module Machine = Chorus_machine.Machine
module Policy = Chorus_sched.Policy
module Runtime = Chorus.Runtime
module Fiber = Chorus.Fiber
module Histogram = Chorus_util.Histogram
module Kernel = Chorus_kernel.Kernel
module Msgvfs = Chorus_kernel.Msgvfs
module Console = Chorus_kernel.Console
module Fsload = Chorus_workload.Fsload
module Load = Fsload.Make (Msgvfs)

let () =
  let cfg =
    Runtime.config ~policy:(Policy.round_robin ()) ~seed:7
      (Machine.mesh ~cores:64)
  in
  let stats =
    Runtime.run cfg (fun () ->
        let kern = Kernel.boot Kernel.default_config in
        Console.write_line kern.Kernel.console "chorus kernel booted";
        let load =
          { Fsload.default_config with
            clients = 24;
            ops_per_client = 150;
            files = 96;
            dirs = 12;
            io_size = 512;
            theta = 0.9 }
        in
        Load.setup (Kernel.fs_client kern) load;
        Printf.printf "population: %d files in %d dirs; %d vnode fibers live\n"
          load.Fsload.files load.Fsload.dirs
          (Msgvfs.live_vnodes kern.Kernel.vfs);
        let r = Load.run_clients (fun _ -> Kernel.fs_client kern) load in
        Printf.printf
          "\n%d ops from %d clients in %d cycles (%.1f ops/Mcycle)\n\n"
          r.Fsload.total_ops load.Fsload.clients r.Fsload.elapsed
          (Fsload.throughput r);
        Printf.printf "%-8s %8s %8s %8s %8s\n" "op" "count" "mean" "p95" "p99";
        List.iter
          (fun (name, h) ->
            Printf.printf "%-8s %8d %8.0f %8d %8d\n" name (Histogram.count h)
              (Histogram.mean h)
              (Histogram.percentile h 95.0)
              (Histogram.percentile h 99.0))
          r.Fsload.per_op;
        Printf.printf "\nkernel: %d service fibers, bcache %d hits / %d misses\n"
          (Kernel.service_fibers kern)
          (Chorus_kernel.Bcache.hits kern.Kernel.bcache)
          (Chorus_kernel.Bcache.misses kern.Kernel.bcache);
        Printf.printf "disk: %d reads, %d writes, request queue peak %d\n"
          (Chorus_kernel.Blockdev.reads kern.Kernel.dev)
          (Chorus_kernel.Blockdev.writes kern.Kernel.dev)
          (Chorus_kernel.Blockdev.max_queue kern.Kernel.dev);
        Console.write_line kern.Kernel.console "workload complete")
  in
  Printf.printf
    "\nmachine: makespan %d cycles, utilization %.1f%%, %d msgs (%d remote)\n"
    stats.Chorus.Runstats.makespan
    (100.0 *. stats.Chorus.Runstats.utilization)
    stats.Chorus.Runstats.msgs stats.Chorus.Runstats.remote_msgs
