(* Pipeline: the blocking-vs-buffered trade-off, live.  Builds the
   same 6-stage pipeline with rendezvous and with buffered channels and
   prints throughput/latency side by side (paper Section 3: blocking
   send "is more powerful; however, non-blocking send ... is probably
   faster").

   Run with:  dune exec examples/pipeline_demo.exe *)

module Machine = Chorus_machine.Machine
module Policy = Chorus_sched.Policy
module Runtime = Chorus.Runtime
module Histogram = Chorus_util.Histogram
module Pipeline = Chorus_workload.Pipeline

let run_once capacity =
  let cfg =
    Runtime.config ~policy:(Policy.round_robin ()) ~seed:3
      (Machine.mesh ~cores:16)
  in
  let result = ref None in
  let stats =
    Runtime.run cfg (fun () ->
        result :=
          Some
            (Pipeline.run
               { Pipeline.default_config with
                 Pipeline.stages = 6;
                 items = 1_000;
                 work_per_stage = 250;
                 capacity;
                 words = 8 }))
  in
  (Option.get !result, stats)

let () =
  Printf.printf "6-stage pipeline, 1000 items, 250 cycles/stage\n\n";
  Printf.printf "%-12s %12s %12s %12s\n" "channels" "items/Mcyc" "mean lat"
    "p99 lat";
  List.iter
    (fun capacity ->
      let r, stats = run_once capacity in
      let name =
        if capacity = 0 then "rendezvous"
        else Printf.sprintf "buffered(%d)" capacity
      in
      Printf.printf "%-12s %12.0f %12.0f %12d\n" name
        (1_000.0 *. 1_000_000.0 /. float_of_int stats.Chorus.Runstats.makespan)
        (Histogram.mean r.Pipeline.item_latency)
        (Histogram.percentile r.Pipeline.item_latency 99.0))
    [ 0; 1; 4; 16; 64 ];
  Printf.printf
    "\nbuffering decouples the stages (throughput up) at the price of\n\
     queueing delay (latency up) - choose per use case.\n"
