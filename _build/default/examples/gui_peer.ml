(* GUI peers: the paper's Section 3.1 example — an application and a
   display server exchanging messages as equals, with choice servicing
   whichever direction is ready.  Compares against the conventional
   callback hierarchy and prints the latency gap for app-initiated
   updates (a clock redraw, a download progress bar, ...).

   Run with:  dune exec examples/gui_peer.exe *)

module Machine = Chorus_machine.Machine
module Runtime = Chorus.Runtime
module Histogram = Chorus_util.Histogram
module Gui = Chorus_workload.Gui

let () =
  let cfg =
    { Gui.input_events = 500;
      app_updates = 500;
      event_work = 400;
      render_work = 600;
      input_gap = 2_000;
      update_gap = 2_500 }
  in
  let run f =
    let out = ref None in
    let (_ : Chorus.Runstats.t) =
      Runtime.run
        (Runtime.config ~seed:2 (Machine.mesh ~cores:8))
        (fun () -> out := Some (f cfg))
    in
    Option.get !out
  in
  let peer = run Gui.run_peer in
  let hier = run Gui.run_hierarchical in
  let line name (r : Gui.result) =
    Printf.printf "%-28s %10.0f %10d %10.0f %10d\n" name
      (Histogram.mean r.Gui.update_latency)
      (Histogram.percentile r.Gui.update_latency 99.0)
      (Histogram.mean r.Gui.input_latency)
      r.Gui.control_transfers
  in
  Printf.printf "500 input events + 500 app-initiated updates\n\n";
  Printf.printf "%-28s %10s %10s %10s %10s\n" "structure" "upd mean" "upd p99"
    "input mean" "transfers";
  line "peer (channels + choice)" peer;
  line "hierarchical (callbacks)" hier;
  Printf.printf
    "\napp-initiated updates wait for the display loop to poll under the\n\
     hierarchy; as peers they are just another message (paper S3.1).\n"
