(* Supervised services: the Erlang-style "aim for not failing"
   posture (paper Section 5).  A flaky key-value service crashes every
   so often; a supervisor restarts it on the same endpoint, so clients
   only ever notice a timeout on the requests caught in the crash.

   Run with:  dune exec examples/supervised_service.exe *)

module Machine = Chorus_machine.Machine
module Runtime = Chorus.Runtime
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Rpc = Chorus.Rpc
module Supervisor = Chorus_kernel.Supervisor

type req = Put of string * int | Get of string

type resp = Ok_put | Found of int | Missing

let flaky_kv ep =
  (* state is rebuilt empty on restart: a deliberately simple service
     so the demo shows the supervision mechanics, not persistence *)
  fun () ->
    Fiber.spawn ~label:"kv" ~daemon:true (fun () ->
        let table = Hashtbl.create 16 in
        let served = ref 0 in
        Rpc.serve ep (fun req ->
            incr served;
            (* every 25th request trips a bug *)
            if !served mod 25 = 0 then failwith "kv: internal assertion";
            Fiber.work 200;
            match req with
            | Put (k, v) ->
              Hashtbl.replace table k v;
              Ok_put
            | Get k -> (
              match Hashtbl.find_opt table k with
              | Some v -> Found v
              | None -> Missing)))

let call_with_timeout ep req =
  let reply = Chan.buffered 1 in
  Chan.send ep (req, reply);
  Chan.choose
    [ Chan.recv_case reply (fun r -> Some r);
      Chan.after 100_000 (fun () -> None) ]

let () =
  let stats =
    Runtime.run
      (Runtime.config ~seed:5 (Machine.mesh ~cores:8))
      (fun () ->
        let ep = Rpc.endpoint ~label:"kv" () in
        let sup =
          Supervisor.start ~max_restarts:50 Supervisor.One_for_one
            [ { Supervisor.cname = "kv"; cstart = flaky_kv ep } ]
        in
        Fiber.sleep 1_000;
        let ok = ref 0 and timeouts = ref 0 in
        for i = 1 to 200 do
          let key = Printf.sprintf "k%d" (i mod 17) in
          (match call_with_timeout ep (Put (key, i)) with
          | Some Ok_put -> incr ok
          | Some _ -> ()
          | None -> incr timeouts);
          match call_with_timeout ep (Get key) with
          | Some (Found _) | Some Missing -> incr ok
          | Some Ok_put -> ()
          | None -> incr timeouts
        done;
        Printf.printf "requests ok:       %d\n" !ok;
        Printf.printf "requests timed out:%d\n" !timeouts;
        Printf.printf "service restarts:  %d\n" (Supervisor.restarts sup);
        Printf.printf "restart log (first 5):\n";
        List.iteri
          (fun i (time, name) ->
            if i < 5 then Printf.printf "  [%8d] restarted %s\n" time name)
          (Supervisor.restart_log sup);
        Supervisor.stop sup)
  in
  Printf.printf "\nsimulated time: %d cycles\n" stats.Chorus.Runstats.makespan
