(* Tests for placement policies: both the pure policy logic (via a
   synthetic view) and their end-to-end effect inside the runtime. *)

module Policy = Chorus_sched.Policy
module Rng = Chorus_util.Rng
module Machine = Chorus_machine.Machine
module Runtime = Chorus.Runtime
module Runstats = Chorus.Runstats
module Fiber = Chorus.Fiber

let view ?(cores = 8) ?(loads = [||]) () =
  let loads = if Array.length loads = 0 then Array.make cores 0 else loads in
  { Policy.cores;
    load = (fun c -> loads.(c));
    hops = (fun a b -> abs (a - b));
    rng = Rng.make 5 }

let test_parent_stays () =
  let v = view () in
  for parent = 0 to 7 do
    Alcotest.(check int) "stays home" parent
      (Policy.place Policy.parent v ~parent ~affinity:None)
  done

let test_round_robin_cycles () =
  let p = Policy.round_robin () in
  let v = view ~cores:4 () in
  let got = List.init 8 (fun _ -> Policy.place p v ~parent:0 ~affinity:None) in
  Alcotest.(check (list int)) "cycles" [ 0; 1; 2; 3; 0; 1; 2; 3 ] got

let test_least_loaded_picks_min () =
  let v = view ~loads:[| 5; 3; 0; 7; 2; 2; 9; 1 |] () in
  Alcotest.(check int) "min load" 2
    (Policy.place Policy.least_loaded v ~parent:0 ~affinity:None)

let test_random_in_range () =
  let v = view ~cores:5 () in
  for _ = 1 to 100 do
    let c = Policy.place Policy.random v ~parent:0 ~affinity:None in
    Alcotest.(check bool) "range" true (c >= 0 && c < 5)
  done

let test_locality_prefers_home () =
  let p = Policy.locality ~spill:2 () in
  let v = view ~loads:[| 0; 0; 0; 0; 0; 0; 0; 0 |] () in
  Alcotest.(check int) "home while light" 3 (Policy.place p v ~parent:3 ~affinity:None)

let test_locality_spills_nearby () =
  let p = Policy.locality ~spill:1 () in
  (* parent 3 overloaded; nearest idle neighbour should win over a
     distant idle core *)
  let v = view ~loads:[| 0; 3; 3; 5; 0; 3; 3; 0 |] () in
  let c = Policy.place p v ~parent:3 ~affinity:None in
  Alcotest.(check bool)
    (Printf.sprintf "spilled close (got %d)" c)
    true
    (c = 4 || c = 2 || c = 1 || c = 0)

let test_work_steal_victim_loaded () =
  let p = Policy.work_steal ~attempts:32 () in
  let v = view ~loads:[| 0; 0; 0; 6; 0; 0; 0; 0 |] () in
  (match Policy.steal_victim p v ~thief:0 with
  | Some 3 -> ()
  | Some c -> Alcotest.failf "stole from idle core %d" c
  | None -> Alcotest.fail "missed the only victim");
  Alcotest.(check bool) "steals flag" true (Policy.steals p)

let test_work_steal_no_victim () =
  let p = Policy.work_steal ~attempts:8 () in
  let v = view () in
  Alcotest.(check bool) "nothing to steal" true
    (Policy.steal_victim p v ~thief:0 = None)

let test_non_stealing_policies () =
  List.iter
    (fun p ->
      if Policy.name p <> "work-steal" then begin
        Alcotest.(check bool) (Policy.name p ^ " no steal flag") false
          (Policy.steals p);
        Alcotest.(check bool) (Policy.name p ^ " no victim") true
          (Policy.steal_victim p (view ~loads:[| 0; 9 |] ~cores:2 ()) ~thief:0
          = None)
      end)
    (Policy.all ())

(* end-to-end: stealing must beat no-balancing on an imbalanced load *)
let test_steal_beats_parent_e2e () =
  let go policy =
    Runtime.run
      (Runtime.config ~policy (Machine.mesh ~cores:16))
      (fun () ->
        let fibers =
          List.init 64 (fun _ -> Fiber.spawn (fun () -> Fiber.work 4_000))
        in
        List.iter (fun f -> ignore (Fiber.join f)) fibers)
  in
  let stuck = go Policy.parent in
  let stolen = go (Policy.work_steal ()) in
  Alcotest.(check bool) "stealing helps" true
    (stolen.Runstats.makespan * 2 < stuck.Runstats.makespan);
  Alcotest.(check bool) "steals happened" true (stolen.Runstats.steals > 0)

let test_policies_deterministic () =
  List.iter
    (fun name ->
      let fresh () =
        List.find (fun p -> Policy.name p = name) (Policy.all ())
      in
      let go () =
        Runtime.run
          (Runtime.config ~policy:(fresh ()) ~seed:9 (Machine.mesh ~cores:8))
          (fun () ->
            let fibers =
              List.init 20 (fun i ->
                  Fiber.spawn (fun () -> Fiber.work (100 * (i + 1))))
            in
            List.iter (fun f -> ignore (Fiber.join f)) fibers)
      in
      let a = go () and b = go () in
      Alcotest.(check int) (name ^ " deterministic") a.Runstats.makespan
        b.Runstats.makespan)
    (List.map Policy.name (Policy.all ()))

let test_affinity_groups_colocate () =
  let p = Policy.affinity_groups () in
  let v = view ~cores:8 () in
  (* same key, same core, regardless of parent *)
  let c1 = Policy.place p v ~parent:0 ~affinity:(Some 42) in
  let c2 = Policy.place p v ~parent:5 ~affinity:(Some 42) in
  Alcotest.(check int) "gang colocated" c1 c2;
  (* different keys spread (statistically: at least two distinct cores
     over 16 keys) *)
  let cores =
    List.init 16 (fun k -> Policy.place p v ~parent:0 ~affinity:(Some k))
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "keys spread" true (List.length cores > 2);
  (* no key: falls back to the default round-robin *)
  let f1 = Policy.place p v ~parent:0 ~affinity:None in
  let f2 = Policy.place p v ~parent:0 ~affinity:None in
  Alcotest.(check bool) "fallback rotates" true (f1 <> f2)

let test_affinity_e2e () =
  (* fibers of one gang land on one core *)
  let observed = ref [] in
  let (_ : Runstats.t) =
    Runtime.run
      (Runtime.config ~policy:(Policy.affinity_groups ())
         (Machine.mesh ~cores:16))
      (fun () ->
        let fibers =
          List.init 6 (fun i ->
              Fiber.spawn ~affinity:7 (fun () ->
                  observed := Fiber.core (Fiber.self ()) :: !observed;
                  Fiber.work (100 * i)))
        in
        List.iter (fun f -> ignore (Fiber.join f)) fibers)
  in
  Alcotest.(check int) "one core for the gang" 1
    (List.length (List.sort_uniq compare !observed))

let () =
  Alcotest.run "chorus-sched"
    [ ( "pure",
        [ Alcotest.test_case "parent" `Quick test_parent_stays;
          Alcotest.test_case "round-robin" `Quick test_round_robin_cycles;
          Alcotest.test_case "least-loaded" `Quick test_least_loaded_picks_min;
          Alcotest.test_case "random range" `Quick test_random_in_range;
          Alcotest.test_case "locality home" `Quick test_locality_prefers_home;
          Alcotest.test_case "locality spill" `Quick
            test_locality_spills_nearby;
          Alcotest.test_case "steal victim" `Quick
            test_work_steal_victim_loaded;
          Alcotest.test_case "steal no victim" `Quick
            test_work_steal_no_victim;
          Alcotest.test_case "non-stealing flags" `Quick
            test_non_stealing_policies;
          Alcotest.test_case "affinity colocates" `Quick
            test_affinity_groups_colocate ] );
      ( "end-to-end",
        [ Alcotest.test_case "steal beats parent" `Quick
            test_steal_beats_parent_e2e;
          Alcotest.test_case "all deterministic" `Quick
            test_policies_deterministic;
          Alcotest.test_case "affinity end-to-end" `Quick
            test_affinity_e2e ] ) ]
