(* Tests for the machine model: topologies, cost presets, message
   latency, coherence, disk service times. *)

module Topology = Chorus_machine.Topology
module Cost = Chorus_machine.Cost
module Machine = Chorus_machine.Machine
module Coherence = Chorus_machine.Coherence
module Diskmodel = Chorus_machine.Diskmodel

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)

let test_mesh_distances () =
  let t = Topology.make (Topology.Mesh (4, 4)) in
  Alcotest.(check int) "cores" 16 (Topology.cores t);
  Alcotest.(check int) "self" 0 (Topology.hops t 5 5);
  Alcotest.(check int) "neighbour" 1 (Topology.hops t 0 1);
  Alcotest.(check int) "manhattan" 6 (Topology.hops t 0 15);
  Alcotest.(check int) "diameter" 6 (Topology.diameter t)

let test_ring_distances () =
  let t = Topology.make (Topology.Ring 8) in
  Alcotest.(check int) "wraps" 1 (Topology.hops t 0 7);
  Alcotest.(check int) "half" 4 (Topology.hops t 0 4);
  Alcotest.(check int) "diameter" 4 (Topology.diameter t)

let test_crossbar_uniform () =
  let t = Topology.make (Topology.Crossbar 6) in
  for i = 0 to 5 do
    for j = 0 to 5 do
      if i <> j then
        Alcotest.(check int) "1 hop" 1 (Topology.hops t i j)
    done
  done

let test_hierarchy_distances () =
  let t = Topology.make (Topology.Hierarchy (2, 2, 4)) in
  Alcotest.(check int) "cores" 16 (Topology.cores t);
  Alcotest.(check int) "same cluster" 1 (Topology.hops t 0 3);
  Alcotest.(check int) "cross cluster" 3 (Topology.hops t 0 4);
  Alcotest.(check int) "cross die" 8 (Topology.hops t 0 8)

let prop_hops_symmetric =
  QCheck.Test.make ~name:"hops is a symmetric pseudo-metric" ~count:100
    QCheck.(triple (int_range 2 64) (int_range 0 1000) (int_range 0 1000))
    (fun (n, a, b) ->
      let t = Topology.make (Topology.Mesh (8, (n + 7) / 8)) in
      let c = Topology.cores t in
      let a = a mod c and b = b mod c in
      Topology.hops t a b = Topology.hops t b a
      && Topology.hops t a a = 0
      && Topology.hops t a b >= 0)

let test_mesh_neighbours () =
  let t = Topology.make (Topology.Mesh (3, 3)) in
  Alcotest.(check (list int)) "corner" [ 1; 3 ]
    (List.sort compare (Topology.neighbours t 0));
  Alcotest.(check (list int)) "center" [ 1; 3; 5; 7 ]
    (List.sort compare (Topology.neighbours t 4))

(* ------------------------------------------------------------------ *)
(* Machine / costs                                                     *)

let test_mesh_exact_core_counts () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "mesh %d exact" n)
        n
        (Machine.cores (Machine.mesh ~cores:n)))
    [ 1; 2; 4; 8; 16; 64; 128; 256; 1024 ]

let test_message_latency_monotone_in_distance () =
  let m = Machine.mesh ~cores:64 in
  let near = Machine.message_latency m ~src:0 ~dst:1 ~words:4 in
  let far = Machine.message_latency m ~src:0 ~dst:63 ~words:4 in
  let local = Machine.message_latency m ~src:5 ~dst:5 ~words:4 in
  Alcotest.(check bool) "far > near" true (far > near);
  Alcotest.(check bool) "near > local" true (near > local);
  Alcotest.(check bool) "local still positive" true (local > 0)

let test_message_latency_scales_with_words () =
  let m = Machine.mesh ~cores:16 in
  let small = Machine.message_latency m ~src:0 ~dst:3 ~words:2 in
  let big = Machine.message_latency m ~src:0 ~dst:3 ~words:512 in
  Alcotest.(check bool) "payload costs" true (big > small + 500)

let test_hw_preset_cheaper () =
  let sw = Machine.mesh ~cores:64 and hw = Machine.mesh_hw ~cores:64 in
  let l m = Machine.message_latency m ~src:0 ~dst:63 ~words:8 in
  Alcotest.(check bool) "hardware messages cheaper" true (l hw < l sw)

let test_scale_messages () =
  let c = Cost.software_messages in
  let half = Cost.scale_messages c 0.5 in
  Alcotest.(check int) "inject halved" (c.Cost.msg_inject / 2)
    half.Cost.msg_inject;
  Alcotest.(check int) "other fields untouched" c.Cost.mode_switch
    half.Cost.mode_switch

(* ------------------------------------------------------------------ *)
(* Coherence                                                           *)

let test_coherence_hit_after_read () =
  let m = Machine.mesh ~cores:16 in
  let l = Coherence.line () in
  let first = Coherence.read m l 5 in
  let second = Coherence.read m l 5 in
  Alcotest.(check bool) "first read is a miss" true (first > second);
  Alcotest.(check int) "second is a hit"
    (Machine.costs m).Cost.cache_hit second

let test_coherence_write_invalidates () =
  let m = Machine.mesh ~cores:16 in
  let l = Coherence.line () in
  ignore (Coherence.read m l 3);
  ignore (Coherence.read m l 7);
  Alcotest.(check bool) "sharers tracked" true (Coherence.sharers l >= 2);
  ignore (Coherence.write m l 9);
  Alcotest.(check int) "owner moved" 9 (Coherence.owner l);
  Alcotest.(check int) "sharers collapsed" 1 (Coherence.sharers l);
  (* the old sharer must now miss *)
  let re = Coherence.read m l 3 in
  Alcotest.(check bool) "invalidated reader misses" true
    (re > (Machine.costs m).Cost.cache_hit)

let test_coherence_queueing_collapse () =
  (* N cores hammering one line at the same instant: later requesters
     pay queueing delay (the scalability collapse mechanism) *)
  let m = Machine.mesh ~cores:64 in
  let l = Coherence.line () in
  let costs =
    List.init 16 (fun c -> Coherence.rmw ~now:1000 m l (c * 4))
  in
  let first = List.hd costs and last = List.nth costs 15 in
  Alcotest.(check bool)
    (Printf.sprintf "16th rmw much dearer (%d vs %d)" last first)
    true
    (last > first + 200)

let test_coherence_owner_writes_cheap () =
  let m = Machine.mesh ~cores:16 in
  let l = Coherence.line () in
  ignore (Coherence.write m l 4);
  let again = Coherence.write m l 4 in
  Alcotest.(check int) "owned exclusive write is a hit"
    (Machine.costs m).Cost.cache_hit again

(* ------------------------------------------------------------------ *)
(* Disk model                                                          *)

let test_disk_sequential_cheaper () =
  let d = Diskmodel.default in
  let seq = Diskmodel.service_time d ~last_block:9 ~block:10 in
  let rand = Diskmodel.service_time d ~last_block:9 ~block:5000 in
  Alcotest.(check int) "sequential skips seek" d.Diskmodel.per_block seq;
  Alcotest.(check int) "random seeks"
    (d.Diskmodel.seek + d.Diskmodel.per_block)
    rand

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "chorus-machine"
    [ ( "topology",
        [ Alcotest.test_case "mesh distances" `Quick test_mesh_distances;
          Alcotest.test_case "ring distances" `Quick test_ring_distances;
          Alcotest.test_case "crossbar uniform" `Quick test_crossbar_uniform;
          Alcotest.test_case "hierarchy distances" `Quick
            test_hierarchy_distances;
          Alcotest.test_case "mesh neighbours" `Quick test_mesh_neighbours;
          qt prop_hops_symmetric ] );
      ( "machine",
        [ Alcotest.test_case "exact core counts" `Quick
            test_mesh_exact_core_counts;
          Alcotest.test_case "latency vs distance" `Quick
            test_message_latency_monotone_in_distance;
          Alcotest.test_case "latency vs payload" `Quick
            test_message_latency_scales_with_words;
          Alcotest.test_case "hw preset cheaper" `Quick test_hw_preset_cheaper;
          Alcotest.test_case "scale_messages" `Quick test_scale_messages ] );
      ( "coherence",
        [ Alcotest.test_case "hit after read" `Quick
            test_coherence_hit_after_read;
          Alcotest.test_case "write invalidates" `Quick
            test_coherence_write_invalidates;
          Alcotest.test_case "contended rmw queues" `Quick
            test_coherence_queueing_collapse;
          Alcotest.test_case "owner writes cheap" `Quick
            test_coherence_owner_writes_cheap ] );
      ( "disk",
        [ Alcotest.test_case "sequential cheaper" `Quick
            test_disk_sequential_cheaper ] ) ]
