(* Edge-case tests for the runtime: interactions between close, kill,
   choice, timers, tracing and the scheduler that the main suite does
   not cover. *)

module Machine = Chorus_machine.Machine
module Policy = Chorus_sched.Policy
module Runtime = Chorus.Runtime
module Runstats = Chorus.Runstats
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan
module Rpc = Chorus.Rpc
module Mailbox = Chorus.Mailbox
module Engine = Chorus.Engine
module Trace = Chorus.Trace

let run ?(cores = 4) ?(seed = 42) main =
  Runtime.run (Runtime.config ~seed (Machine.mesh ~cores)) main

(* ------------------------------------------------------------------ *)
(* close / choice interactions                                         *)

let test_close_aborts_blocked_choice () =
  let got = ref "" in
  let (_ : Runstats.t) =
    run (fun () ->
        let a : int Chan.t = Chan.rendezvous () in
        let b : int Chan.t = Chan.rendezvous () in
        let chooser =
          Fiber.spawn (fun () ->
              match
                Chan.choose
                  [ Chan.recv_case a (fun _ -> "a");
                    Chan.recv_case b (fun _ -> "b") ]
              with
              | s -> got := s
              | exception Chan.Closed -> got := "closed")
        in
        Fiber.sleep 1_000;
        Chan.close a;
        ignore (Fiber.join chooser))
  in
  Alcotest.(check string) "choice aborted by close" "closed" !got

let test_closed_channel_ready_in_choice () =
  (* a closed+drained channel counts as ready; its arm raises *)
  let (_ : Runstats.t) =
    run (fun () ->
        let a : int Chan.t = Chan.buffered 1 in
        Chan.close a;
        match
          Chan.choose [ Chan.recv_case a (fun _ -> "value") ]
        with
        | _ -> Alcotest.fail "expected Closed"
        | exception Chan.Closed -> ())
  in
  ()

let test_choice_drains_buffer_of_closed_channel () =
  let (_ : Runstats.t) =
    run (fun () ->
        let a = Chan.buffered 2 in
        Chan.send a 1;
        Chan.send a 2;
        Chan.close a;
        let v1 = Chan.choose [ Chan.recv_case a (fun v -> v) ] in
        let v2 = Chan.choose [ Chan.recv_case a (fun v -> v) ] in
        Alcotest.(check (list int)) "buffered survive close" [ 1; 2 ]
          [ v1; v2 ])
  in
  ()

let test_kill_blocked_choice_leaves_channels_clean () =
  let (_ : Runstats.t) =
    run (fun () ->
        let a : int Chan.t = Chan.rendezvous () in
        let b : int Chan.t = Chan.rendezvous () in
        let chooser =
          Fiber.spawn (fun () ->
              ignore
                (Chan.choose
                   [ Chan.recv_case a (fun v -> v);
                     Chan.recv_case b (fun v -> v) ]))
        in
        Fiber.sleep 1_000;
        Fiber.kill chooser;
        ignore (Fiber.join chooser);
        (* stale registrations must not swallow a later send *)
        let r = Fiber.spawn (fun () -> ignore (Chan.recv a)) in
        Fiber.sleep 1_000;
        Chan.send a 42;
        ignore (Fiber.join r))
  in
  ()

let test_two_choices_race_one_value () =
  let winners = ref 0 in
  let (_ : Runstats.t) =
    run (fun () ->
        let a : int Chan.t = Chan.rendezvous () in
        let make_chooser () =
          Fiber.spawn (fun () ->
              match
                Chan.choose
                  [ Chan.recv_case a (fun v -> v);
                    Chan.after 100_000 (fun () -> -1) ]
              with
              | -1 -> ()
              | _ -> incr winners)
        in
        let c1 = make_chooser () and c2 = make_chooser () in
        Fiber.sleep 1_000;
        Chan.send a 7;
        ignore (Fiber.join c1);
        ignore (Fiber.join c2))
  in
  Alcotest.(check int) "exactly one choice wins" 1 !winners

let test_choice_only_timers () =
  let (_ : Runstats.t) =
    run (fun () ->
        let t0 = Fiber.now () in
        let which =
          Chan.choose
            [ Chan.after 5_000 (fun () -> "slow");
              Chan.after 1_000 (fun () -> "fast") ]
        in
        Alcotest.(check string) "earliest timer" "fast" which;
        Alcotest.(check bool) "waited only the short delay" true
          (Fiber.now () - t0 < 3_000))
  in
  ()

let test_send_case_fires_when_space_frees () =
  let (_ : Runstats.t) =
    run (fun () ->
        let c = Chan.buffered 1 in
        Chan.send c 0;
        (* buffer full: the send case must block until the consumer
           drains *)
        let consumer =
          Fiber.spawn (fun () ->
              Fiber.sleep 5_000;
              ignore (Chan.recv c);
              ignore (Chan.recv c))
        in
        let tag =
          Chan.choose [ Chan.send_case c 1 (fun () -> "sent") ]
        in
        Alcotest.(check string) "send case completed" "sent" tag;
        ignore (Fiber.join consumer))
  in
  ()

(* ------------------------------------------------------------------ *)
(* scheduler behaviour                                                 *)

let test_yield_interleaves_on_one_core () =
  let log = ref [] in
  let (_ : Runstats.t) =
    run ~cores:1 (fun () ->
        let mk tag =
          Fiber.spawn ~on:0 (fun () ->
              for _ = 1 to 3 do
                log := tag :: !log;
                Fiber.yield ()
              done)
        in
        let a = mk "a" and b = mk "b" in
        ignore (Fiber.join a);
        ignore (Fiber.join b))
  in
  Alcotest.(check (list string)) "round-robin interleave"
    [ "a"; "b"; "a"; "b"; "a"; "b" ]
    (List.rev !log)

let test_timers_fire_in_order () =
  let order = ref [] in
  let (_ : Runstats.t) =
    run (fun () ->
        let fibers =
          List.map
            (fun (delay, tag) ->
              Fiber.spawn (fun () ->
                  Fiber.sleep delay;
                  order := tag :: !order))
            [ (30_000, "c"); (10_000, "a"); (20_000, "b") ]
        in
        List.iter (fun f -> ignore (Fiber.join f)) fibers)
  in
  Alcotest.(check (list string)) "timer order" [ "a"; "b"; "c" ]
    (List.rev !order)

let test_deadlock_names_the_culprit () =
  (try
     ignore
       (run (fun () ->
            let c : int Chan.t = Chan.rendezvous ~label:"stuck-chan" () in
            let f =
              Fiber.spawn ~label:"the-culprit" (fun () ->
                  ignore (Chan.recv c))
            in
            ignore (Fiber.join f)));
     Alcotest.fail "expected deadlock"
   with Engine.Deadlock msg ->
     let contains needle =
       let rec go i =
         i + String.length needle <= String.length msg
         && (String.sub msg i (String.length needle) = needle || go (i + 1))
       in
       go 0
     in
     Alcotest.(check bool) "names the fiber" true (contains "the-culprit");
     Alcotest.(check bool) "names the channel" true (contains "stuck-chan"))

let test_monitor_order () =
  let order = ref [] in
  let (_ : Runstats.t) =
    run (fun () ->
        let f = Fiber.spawn (fun () -> Fiber.work 1_000) in
        Fiber.monitor f (fun ~time:_ _ -> order := 1 :: !order);
        Fiber.monitor f (fun ~time:_ _ -> order := 2 :: !order);
        ignore (Fiber.join f);
        Fiber.sleep 1_000)
  in
  Alcotest.(check (list int)) "registration order" [ 1; 2 ] (List.rev !order)

let test_trace_block_then_wake () =
  let sink, get = Trace.collector () in
  let (_ : Runstats.t) =
    Runtime.run
      (Runtime.config ~trace:sink (Machine.mesh ~cores:2))
      (fun () ->
        let c = Chan.rendezvous () in
        let r = Fiber.spawn (fun () -> ignore (Chan.recv c)) in
        Fiber.sleep 2_000;
        Chan.send c 5;
        ignore (Fiber.join r))
  in
  let records = get () in
  (* the receiver must block before the sender's Send record *)
  let idx p =
    let rec go i = function
      | [] -> -1
      | r :: rest -> if p r then i else go (i + 1) rest
    in
    go 0 records
  in
  let block_i =
    idx (fun r ->
        match r.Trace.event with Trace.Block _ -> true | _ -> false)
  in
  let send_i =
    idx (fun r ->
        match r.Trace.event with Trace.Send _ -> true | _ -> false)
  in
  Alcotest.(check bool) "block precedes send" true
    (block_i >= 0 && send_i > block_i)

(* ------------------------------------------------------------------ *)
(* misc API                                                            *)

let test_rpc_serve_n () =
  let (_ : Runstats.t) =
    run (fun () ->
        let ep = Rpc.endpoint () in
        let server = Fiber.spawn (fun () -> Rpc.serve_n 3 ep (fun x -> -x)) in
        Alcotest.(check int) "1" (-1) (Rpc.call ep 1);
        Alcotest.(check int) "2" (-2) (Rpc.call ep 2);
        Alcotest.(check int) "3" (-3) (Rpc.call ep 3);
        (* the server returned after exactly three *)
        ignore (Fiber.join server))
  in
  ()

let test_mailbox_size_counts_stash () =
  let (_ : Runstats.t) =
    run (fun () ->
        let mb = Mailbox.create () in
        Mailbox.send mb (`A 1);
        Mailbox.send mb (`B 2);
        Mailbox.send mb (`A 3);
        Alcotest.(check int) "size" 3 (Mailbox.size mb);
        ignore
          (Mailbox.receive mb (function `B x -> Some x | `A _ -> None));
        Alcotest.(check int) "stash retained" 2 (Mailbox.size mb))
  in
  ()

let test_try_recv_closed_raises () =
  let (_ : Runstats.t) =
    run (fun () ->
        let c : int Chan.t = Chan.buffered 1 in
        Chan.close c;
        match Chan.try_recv c with
        | _ -> Alcotest.fail "expected Closed"
        | exception Chan.Closed -> ())
  in
  ()

let test_waiting_counters () =
  let (_ : Runstats.t) =
    run (fun () ->
        let c : int Chan.t = Chan.rendezvous () in
        let r1 = Fiber.spawn (fun () -> ignore (Chan.recv c)) in
        let r2 = Fiber.spawn (fun () -> ignore (Chan.recv c)) in
        Fiber.sleep 1_000;
        Alcotest.(check int) "two receivers parked" 2
          (Chan.waiting_receivers c);
        Alcotest.(check int) "no senders" 0 (Chan.waiting_senders c);
        Chan.send c 1;
        Chan.send c 2;
        ignore (Fiber.join r1);
        ignore (Fiber.join r2);
        Alcotest.(check int) "drained" 0 (Chan.waiting_receivers c))
  in
  ()

let test_double_close_is_noop () =
  let (_ : Runstats.t) =
    run (fun () ->
        let c : int Chan.t = Chan.buffered 1 in
        Chan.close c;
        Chan.close c;
        Alcotest.(check bool) "closed" true (Chan.is_closed c))
  in
  ()

let test_spawn_many_fibers () =
  (* the registry compaction path and fid allocation under volume *)
  let (_ : Runstats.t) =
    run ~cores:4 (fun () ->
        for _ = 1 to 50 do
          let fibers =
            List.init 200 (fun _ -> Fiber.spawn (fun () -> Fiber.work 10))
          in
          List.iter (fun f -> ignore (Fiber.join f)) fibers
        done)
  in
  ()

let test_engine_now_monotonic_across_ops () =
  let (_ : Runstats.t) =
    run (fun () ->
        let last = ref 0 in
        let check () =
          let n = Fiber.now () in
          Alcotest.(check bool) "monotonic" true (n >= !last);
          last := n
        in
        check ();
        Fiber.work 100;
        check ();
        Fiber.yield ();
        check ();
        Fiber.sleep 500;
        check ();
        let c = Chan.buffered 1 in
        Chan.send c ();
        check ();
        ignore (Chan.recv c);
        check ())
  in
  ()

let test_choice_fairness () =
  (* two always-ready channels: over many picks, neither starves and
     the split is roughly even (seeded rng tie-breaking) *)
  let a_wins = ref 0 in
  let n = 2_000 in
  let (_ : Runstats.t) =
    run (fun () ->
        let a = Chan.buffered n and b = Chan.buffered n in
        for i = 1 to n do
          Chan.send a i;
          Chan.send b i
        done;
        for _ = 1 to n do
          Chan.choose
            [ Chan.recv_case a (fun _ -> incr a_wins);
              Chan.recv_case b (fun _ -> ()) ]
        done)
  in
  Alcotest.(check bool)
    (Printf.sprintf "roughly even split (a won %d of %d)" !a_wins n)
    true
    (!a_wins > (n * 4 / 10) && !a_wins < (n * 6 / 10))

let test_buffered_never_exceeds_capacity () =
  let maxlen = ref 0 in
  let (_ : Runstats.t) =
    run (fun () ->
        let c = Chan.buffered 5 in
        let producer =
          Fiber.spawn (fun () ->
              for i = 1 to 100 do
                Chan.send c i;
                maxlen := max !maxlen (Chan.length c)
              done)
        in
        let consumer =
          Fiber.spawn (fun () ->
              for _ = 1 to 100 do
                ignore (Chan.recv c);
                maxlen := max !maxlen (Chan.length c);
                if Fiber.now () mod 3 = 0 then Fiber.yield ()
              done)
        in
        ignore (Fiber.join producer);
        ignore (Fiber.join consumer))
  in
  Alcotest.(check bool)
    (Printf.sprintf "buffer bounded (peak %d)" !maxlen)
    true (!maxlen <= 5)

let () =
  Alcotest.run "chorus-core-edge"
    [ ( "close-choice",
        [ Alcotest.test_case "close aborts blocked choice" `Quick
            test_close_aborts_blocked_choice;
          Alcotest.test_case "closed channel is ready" `Quick
            test_closed_channel_ready_in_choice;
          Alcotest.test_case "drains closed buffer" `Quick
            test_choice_drains_buffer_of_closed_channel;
          Alcotest.test_case "kill leaves channels clean" `Quick
            test_kill_blocked_choice_leaves_channels_clean;
          Alcotest.test_case "two choices, one value" `Quick
            test_two_choices_race_one_value;
          Alcotest.test_case "timer-only choice" `Quick
            test_choice_only_timers;
          Alcotest.test_case "send case unblocks" `Quick
            test_send_case_fires_when_space_frees;
          Alcotest.test_case "choice fairness" `Quick test_choice_fairness;
          Alcotest.test_case "capacity invariant" `Quick
            test_buffered_never_exceeds_capacity ] );
      ( "scheduler",
        [ Alcotest.test_case "yield interleaves" `Quick
            test_yield_interleaves_on_one_core;
          Alcotest.test_case "timer order" `Quick test_timers_fire_in_order;
          Alcotest.test_case "deadlock diagnostics" `Quick
            test_deadlock_names_the_culprit;
          Alcotest.test_case "monitor order" `Quick test_monitor_order;
          Alcotest.test_case "trace block/send order" `Quick
            test_trace_block_then_wake;
          Alcotest.test_case "many fibers" `Quick test_spawn_many_fibers;
          Alcotest.test_case "now monotonic" `Quick
            test_engine_now_monotonic_across_ops ] );
      ( "api",
        [ Alcotest.test_case "serve_n" `Quick test_rpc_serve_n;
          Alcotest.test_case "mailbox size" `Quick
            test_mailbox_size_counts_stash;
          Alcotest.test_case "try_recv closed" `Quick
            test_try_recv_closed_raises;
          Alcotest.test_case "waiting counters" `Quick test_waiting_counters;
          Alcotest.test_case "double close" `Quick test_double_close_is_noop ] ) ]
