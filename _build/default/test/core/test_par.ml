(* Tests for Par combinators and fiber priorities. *)

module Machine = Chorus_machine.Machine
module Policy = Chorus_sched.Policy
module Runtime = Chorus.Runtime
module Runstats = Chorus.Runstats
module Fiber = Chorus.Fiber
module Par = Chorus.Par

let run ?(cores = 8) main =
  Runtime.run
    (Runtime.config ~policy:(Policy.round_robin ()) (Machine.mesh ~cores))
    main

let test_par_runs_all () =
  let hits = Array.make 5 false in
  let (_ : Runstats.t) =
    run (fun () ->
        Par.par (List.init 5 (fun i () -> hits.(i) <- true)))
  in
  Alcotest.(check bool) "all branches ran" true (Array.for_all Fun.id hits)

let test_par_is_parallel () =
  let serial =
    run ~cores:8 (fun () ->
        for _ = 1 to 8 do
          Fiber.work 10_000
        done)
  in
  let parallel =
    run ~cores:8 (fun () ->
        Par.par (List.init 8 (fun _ () -> Fiber.work 10_000)))
  in
  Alcotest.(check bool) "parallel is faster" true
    (parallel.Runstats.makespan * 3 < serial.Runstats.makespan)

let test_par_propagates_crash () =
  let second_ran = ref false in
  let (_ : Runstats.t) =
    run (fun () ->
        match
          Par.par
            [ (fun () -> failwith "branch boom");
              (fun () ->
                Fiber.work 100;
                second_ran := true) ]
        with
        | () -> Alcotest.fail "crash swallowed"
        | exception Par.Branch_failed (label, Failure m) ->
          Alcotest.(check string) "label" "par-0" label;
          Alcotest.(check string) "payload" "branch boom" m
        | exception _ -> Alcotest.fail "wrong exception")
  in
  Alcotest.(check bool) "other branches still completed" true !second_ran

let test_par_map_order () =
  let (_ : Runstats.t) =
    run (fun () ->
        let out = Par.par_map (fun x -> x * x) [ 1; 2; 3; 4; 5 ] in
        Alcotest.(check (list int)) "ordered" [ 1; 4; 9; 16; 25 ] out)
  in
  ()

let test_race_first_wins () =
  let (_ : Runstats.t) =
    run (fun () ->
        let v =
          Par.race
            [ (fun () ->
                Fiber.sleep 50_000;
                "slow");
              (fun () ->
                Fiber.sleep 1_000;
                "fast") ]
        in
        Alcotest.(check string) "fastest branch" "fast" v)
  in
  ()

let test_race_all_crash () =
  let (_ : Runstats.t) =
    run (fun () ->
        match Par.race [ (fun () -> failwith "a"); (fun () -> failwith "b") ] with
        | _ -> Alcotest.fail "expected crash"
        | exception Failure _ -> ())
  in
  ()

let test_priority_jumps_queue () =
  let order = ref [] in
  let (_ : Runstats.t) =
    run ~cores:1 (fun () ->
        (* park everything behind main's segment, then observe order *)
        let tag t () = order := t :: !order in
        let _n1 = Fiber.spawn ~on:0 (tag "n1") in
        let _n2 = Fiber.spawn ~on:0 (tag "n2") in
        let _hi = Fiber.spawn ~on:0 ~priority:Fiber.High (tag "hi") in
        Fiber.sleep 100_000)
  in
  Alcotest.(check (list string)) "high priority ran first"
    [ "hi"; "n1"; "n2" ] (List.rev !order)

let () =
  Alcotest.run "chorus-par"
    [ ( "par",
        [ Alcotest.test_case "runs all" `Quick test_par_runs_all;
          Alcotest.test_case "is parallel" `Quick test_par_is_parallel;
          Alcotest.test_case "propagates crash" `Quick
            test_par_propagates_crash;
          Alcotest.test_case "par_map order" `Quick test_par_map_order ] );
      ( "race",
        [ Alcotest.test_case "first wins" `Quick test_race_first_wins;
          Alcotest.test_case "all crash" `Quick test_race_all_crash ] );
      ( "priority",
        [ Alcotest.test_case "jumps queue" `Quick test_priority_jumps_queue ] ) ]
