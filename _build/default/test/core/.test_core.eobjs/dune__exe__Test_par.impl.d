test/core/test_par.ml: Alcotest Array Chorus Chorus_machine Chorus_sched Fun List
