test/core/test_core.ml: Alcotest Chorus Chorus_machine Chorus_sched Fun Gen List Printf QCheck QCheck_alcotest
