test/core/test_par.mli:
