test/core/test_core.mli:
