test/core/test_core_edge.ml: Alcotest Chorus Chorus_machine Chorus_sched List Printf String
