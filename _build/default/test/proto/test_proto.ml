(* Tests for protocol machinery: session types, monitors, bounded
   exploration. *)

module Ltype = Chorus_proto.Ltype
module Monitor = Chorus_proto.Monitor
module Explore = Chorus_proto.Explore
module Machine = Chorus_machine.Machine
module Runtime = Chorus.Runtime
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan

let run main =
  ignore (Runtime.run (Runtime.config (Machine.mesh ~cores:4)) main)

(* ------------------------------------------------------------------ *)
(* Ltype                                                               *)

let ping = Ltype.send "ping" (Ltype.recv "pong" Ltype.End)

let test_well_formed () =
  Alcotest.(check bool) "simple ok" true (Ltype.well_formed ping = Ok ());
  let looped = Ltype.loop "x" (Ltype.send "a" (Ltype.Var "x")) in
  Alcotest.(check bool) "guarded loop ok" true
    (Ltype.well_formed looped = Ok ());
  (match Ltype.well_formed (Ltype.Var "free") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "free var accepted");
  (match Ltype.well_formed (Ltype.loop "x" (Ltype.Var "x")) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unguarded recursion accepted");
  match Ltype.well_formed (Ltype.Send [ ("a", Ltype.End); ("a", Ltype.End) ]) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate label accepted"

let test_dual_involution () =
  Alcotest.(check bool) "dual o dual = id" true
    (Ltype.dual (Ltype.dual ping) = ping)

let test_compatible_dual () =
  Alcotest.(check bool) "ping compatible with its dual" true
    (Ltype.compatible ping (Ltype.dual ping));
  Alcotest.(check bool) "ping not compatible with itself" false
    (Ltype.compatible ping ping)

let test_compatible_subtyping () =
  (* a sender offering fewer labels than the receiver handles is fine *)
  let narrow = Ltype.send "a" Ltype.End in
  let wide = Ltype.Recv [ ("a", Ltype.End); ("b", Ltype.End) ] in
  Alcotest.(check bool) "narrow sender ok" true
    (Ltype.compatible narrow wide);
  (* the reverse is not *)
  let wide_sender = Ltype.Send [ ("a", Ltype.End); ("b", Ltype.End) ] in
  let narrow_receiver = Ltype.recv "a" Ltype.End in
  Alcotest.(check bool) "wide sender rejected" false
    (Ltype.compatible wide_sender narrow_receiver)

let test_compatible_recursive () =
  let client =
    Ltype.loop "x"
      (Ltype.Send [ ("more", Ltype.recv "item" (Ltype.Var "x"));
                    ("stop", Ltype.End) ])
  in
  Alcotest.(check bool) "recursive duality" true
    (Ltype.compatible client (Ltype.dual client))

let prop_dual_compatible =
  (* random protocol generator: every generated protocol must be
     compatible with its dual *)
  let rec gen_ltype depth st =
    let open QCheck.Gen in
    if depth = 0 then Ltype.End
    else begin
      let label i = Printf.sprintf "l%d" i in
      let branches n =
        List.init (1 + (n mod 3)) (fun i ->
            (label i, gen_ltype (depth - 1) st))
      in
      match int_bound 3 st with
      | 0 -> Ltype.End
      | 1 -> Ltype.Send (branches (int_bound 5 st))
      | _ -> Ltype.Recv (branches (int_bound 5 st))
    end
  in
  QCheck.Test.make ~name:"generated protocols compatible with dual"
    ~count:100
    (QCheck.make (gen_ltype 4))
    (fun t ->
      QCheck.assume (Ltype.well_formed t = Ok ());
      Ltype.compatible t (Ltype.dual t))

(* ------------------------------------------------------------------ *)
(* Monitor                                                             *)

type msg = Ping | Pong

let label_of = function Ping -> "ping" | Pong -> "pong"

let test_monitor_accepts_conforming () =
  run (fun () ->
      let c2s = Chan.unbounded () and s2c = Chan.unbounded () in
      let client =
        Monitor.create ~role:"client" ~spec:ping ~label_of ~rx:s2c c2s
      in
      let server =
        Monitor.create ~role:"server" ~spec:(Ltype.dual ping) ~label_of
          ~rx:c2s s2c
      in
      let srv =
        Fiber.spawn (fun () ->
            match Monitor.recv server with
            | Ping -> Monitor.send server Pong
            | Pong -> Alcotest.fail "bad message")
      in
      Monitor.send client Ping;
      (match Monitor.recv client with
      | Pong -> ()
      | Ping -> Alcotest.fail "expected pong");
      ignore (Fiber.join srv);
      Alcotest.(check bool) "client finished" true (Monitor.finished client);
      Alcotest.(check bool) "server finished" true (Monitor.finished server);
      Alcotest.(check int) "no violations" 0 (Monitor.violations client))

let test_monitor_rejects_wrong_label () =
  run (fun () ->
      let ch = Chan.unbounded () in
      let m = Monitor.create ~role:"client" ~spec:ping ~label_of ch in
      Alcotest.(check bool) "wrong label raises" true
        (match Monitor.send m Pong with
        | () -> false
        | exception Monitor.Violation _ -> true);
      Alcotest.(check int) "violation counted" 1 (Monitor.violations m))

let test_monitor_rejects_send_after_end () =
  run (fun () ->
      let ch = Chan.unbounded () in
      let m =
        Monitor.create ~role:"c" ~spec:(Ltype.send "a" Ltype.End) ~label_of:(fun _ -> "a") ch
      in
      Monitor.send m Ping;
      match Monitor.send m Ping with
      | () -> Alcotest.fail "send after end accepted"
      | exception Monitor.Violation _ -> ())

(* ------------------------------------------------------------------ *)
(* Explore                                                             *)

let test_explore_finds_buffer_overflow_block () =
  (* producer sends 3 into capacity-1 channel nobody drains: stuck *)
  let sys =
    { Explore.processes =
        [ { Explore.pname = "producer";
            start = 0;
            final = [ 3 ];
            transitions =
              [ (0, Explore.Send ("c", "m"), 1);
                (1, Explore.Send ("c", "m"), 2);
                (2, Explore.Send ("c", "m"), 3) ] } ];
      channels = [ { Explore.cname = "c"; capacity = 1 } ] }
  in
  match Explore.check sys with
  | Explore.Deadlock { stuck; _ } ->
    Alcotest.(check bool) "producer stuck" true
      (List.exists (fun s -> String.length s > 0) stuck)
  | _ -> Alcotest.fail "expected deadlock"

let test_explore_clean_pipeline () =
  let sys =
    { Explore.processes =
        [ { Explore.pname = "a";
            start = 0;
            final = [ 2 ];
            transitions =
              [ (0, Explore.Send ("c", "x"), 1);
                (1, Explore.Send ("c", "x"), 2) ] };
          { Explore.pname = "b";
            start = 0;
            final = [ 2 ];
            transitions =
              [ (0, Explore.Recv ("c", "x"), 1);
                (1, Explore.Recv ("c", "x"), 2) ] } ];
      channels = [ { Explore.cname = "c"; capacity = 2 } ] }
  in
  match Explore.check sys with
  | Explore.Ok_no_deadlock { states_explored } ->
    Alcotest.(check bool) "explored several states" true (states_explored > 3)
  | _ -> Alcotest.fail "expected clean"

let test_explore_rendezvous_pairing () =
  (* rendezvous: send fires only with a matching receiver *)
  let sys =
    { Explore.processes =
        [ { Explore.pname = "a";
            start = 0;
            final = [ 1 ];
            transitions = [ (0, Explore.Send ("r", "go"), 1) ] };
          { Explore.pname = "b";
            start = 0;
            final = [ 1 ];
            transitions = [ (0, Explore.Recv ("r", "go"), 1) ] } ];
      channels = [ { Explore.cname = "r"; capacity = 0 } ] }
  in
  match Explore.check sys with
  | Explore.Ok_no_deadlock _ -> ()
  | _ -> Alcotest.fail "rendezvous should pair"

let test_explore_label_mismatch_deadlock () =
  let sys =
    { Explore.processes =
        [ { Explore.pname = "a";
            start = 0;
            final = [ 1 ];
            transitions = [ (0, Explore.Send ("r", "go"), 1) ] };
          { Explore.pname = "b";
            start = 0;
            final = [ 1 ];
            transitions = [ (0, Explore.Recv ("r", "halt"), 1) ] } ];
      channels = [ { Explore.cname = "r"; capacity = 0 } ] }
  in
  match Explore.check sys with
  | Explore.Deadlock _ -> ()
  | _ -> Alcotest.fail "label mismatch should deadlock"

let test_explore_budget () =
  (* a process that counts forever in a big product space *)
  let counter name =
    { Explore.pname = name;
      start = 0;
      final = [ 0 ];
      transitions =
        List.concat
          (List.init 50 (fun i -> [ (i, Explore.Tau, (i + 1) mod 50) ])) }
  in
  let sys =
    { Explore.processes = [ counter "a"; counter "b"; counter "c" ];
      channels = [] }
  in
  match Explore.check ~max_states:100 sys with
  | Explore.Budget_exhausted { states_explored } ->
    Alcotest.(check bool) "stopped at budget" true (states_explored <= 101)
  | _ -> Alcotest.fail "expected budget exhaustion"

let test_explore_trace_is_replayable () =
  let sys =
    { Explore.processes =
        [ { Explore.pname = "a";
            start = 0;
            final = [ 9 ];
            transitions =
              [ (0, Explore.Send ("c", "first"), 1);
                (1, Explore.Send ("c", "second"), 2) ] } ];
      channels = [ { Explore.cname = "c"; capacity = 2 } ] }
  in
  match Explore.check sys with
  | Explore.Deadlock { trace; _ } ->
    (* stuck at state 2 (not final): trace shows both sends in order *)
    Alcotest.(check int) "two steps" 2 (List.length trace);
    Alcotest.(check bool) "first step mentions first" true
      (String.length (List.nth trace 0) > 0)
  | _ -> Alcotest.fail "expected deadlock at non-final state"

(* ------------------------------------------------------------------ *)
(* Gtype (appended suite)                                              *)

module Gtype = Chorus_proto.Gtype

(* fs asks the allocator for a block; the allocator either grants or
   refuses; on grant fs tells the cache to zero it *)
let alloc_proto =
  Gtype.msg "fs" "alloc" "request"
    (Gtype.Choice
       { sender = "alloc";
         receiver = "fs";
         branches =
           [ ("grant", Gtype.msg "fs" "cache" "zero"
                (Gtype.msg "cache" "fs" "done" Gtype.End));
             (* the cache is told either way (projection merges the
                two Recv views by label union) *)
             ("full", Gtype.msg "fs" "cache" "skip" Gtype.End) ] })

let test_gtype_roles_wf () =
  Alcotest.(check (list string)) "roles" [ "alloc"; "cache"; "fs" ]
    (Gtype.roles alloc_proto);
  Alcotest.(check bool) "well-formed" true
    (Gtype.well_formed alloc_proto = Ok ());
  (match Gtype.well_formed (Gtype.msg "a" "a" "x" Gtype.End) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "self-message accepted")

let test_gtype_projection_pairwise_compatible () =
  (* fs and alloc interact directly: their projections restricted to
     each other must be checkable; here we verify every projection
     exists and the two-party sub-protocol is dual *)
  match Gtype.project_all alloc_proto with
  | None -> Alcotest.fail "projection failed"
  | Some projs ->
    Alcotest.(check int) "three projections" 3 (List.length projs);
    let fs = List.assoc "fs" projs in
    (match Ltype.well_formed fs with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("fs projection ill-formed: " ^ e));
    (* two-party global type: projections are dual-compatible *)
    let two =
      Gtype.msg "c" "s" "req"
        (Gtype.Choice
           { sender = "s"; receiver = "c";
             branches = [ ("ok", Gtype.End); ("err", Gtype.End) ] })
    in
    (match (Gtype.project two "c", Gtype.project two "s") with
    | Ok pc, Ok ps ->
      Alcotest.(check bool) "binary projections compatible" true
        (Ltype.compatible pc ps)
    | _ -> Alcotest.fail "binary projection failed")

let test_gtype_unmergeable_rejected () =
  (* cache behaves differently in branches it cannot observe *)
  let bad =
    Gtype.Choice
      { sender = "a";
        receiver = "b";
        branches =
          [ ("left", Gtype.msg "a" "c" "ping" Gtype.End);
            ("right", Gtype.End) ] }
  in
  match Gtype.project bad "c" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unmergeable projection accepted"

let test_gtype_recursion_projection () =
  let streaming =
    Gtype.Rec
      ("x",
       Gtype.Choice
         { sender = "producer";
           receiver = "consumer";
           branches =
             [ ("item", Gtype.msg "producer" "consumer" "data" (Gtype.Var "x"));
               ("eof", Gtype.End) ] })
  in
  (match Gtype.project streaming "producer" with
  | Ok p ->
    Alcotest.(check bool) "producer loops" true
      (match p with Ltype.Rec _ -> true | _ -> false)
  | Error e -> Alcotest.fail e);
  (* the consumer's merged view offers all labels *)
  match Gtype.project streaming "consumer" with
  | Ok (Ltype.Rec (_, Ltype.Recv branches)) ->
    Alcotest.(check (list string)) "consumer sees all labels"
      [ "eof"; "item" ]
      (List.sort compare (List.map fst branches))
  | Ok _ | Error _ -> Alcotest.fail "consumer projection shape"

(* property: a producer/consumer pair built from any random label
   sequence is deadlock-free over rendezvous; chopping the last
   receive off the consumer always deadlocks *)
let seq_system labels ~truncate =
  let n = List.length labels in
  let producer =
    { Explore.pname = "p";
      start = 0;
      final = [ n ];
      transitions =
        List.mapi (fun i l -> (i, Explore.Send ("c", l), i + 1)) labels }
  in
  let consumer_len = if truncate then n - 1 else n in
  let consumer =
    { Explore.pname = "q";
      start = 0;
      final = [ consumer_len ];
      transitions =
        List.filteri (fun i _ -> i < consumer_len)
          (List.mapi (fun i l -> (i, Explore.Recv ("c", l), i + 1)) labels) }
  in
  { Explore.processes = [ producer; consumer ];
    channels = [ { Explore.cname = "c"; capacity = 0 } ] }

let prop_explore_matched_sequences_clean =
  QCheck.Test.make ~name:"matched send/recv sequences are deadlock-free"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 10) (int_range 0 4))
    (fun xs ->
      let labels = List.map (Printf.sprintf "l%d") xs in
      match Explore.check (seq_system labels ~truncate:false) with
      | Explore.Ok_no_deadlock _ -> true
      | _ -> false)

let prop_explore_truncated_consumer_deadlocks =
  QCheck.Test.make ~name:"dropping the last receive always deadlocks"
    ~count:100
    QCheck.(list_of_size Gen.(2 -- 10) (int_range 0 4))
    (fun xs ->
      let labels = List.map (Printf.sprintf "l%d") xs in
      match Explore.check (seq_system labels ~truncate:true) with
      | Explore.Deadlock _ -> true
      | _ -> false)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "chorus-proto"
    [ ( "ltype",
        [ Alcotest.test_case "well-formedness" `Quick test_well_formed;
          Alcotest.test_case "dual involution" `Quick test_dual_involution;
          Alcotest.test_case "compatibility" `Quick test_compatible_dual;
          Alcotest.test_case "subtyping" `Quick test_compatible_subtyping;
          Alcotest.test_case "recursive" `Quick test_compatible_recursive;
          qt prop_dual_compatible ] );
      ( "monitor",
        [ Alcotest.test_case "conforming session" `Quick
            test_monitor_accepts_conforming;
          Alcotest.test_case "wrong label" `Quick
            test_monitor_rejects_wrong_label;
          Alcotest.test_case "send after end" `Quick
            test_monitor_rejects_send_after_end ] );
      ( "explore",
        [ Alcotest.test_case "stuck producer" `Quick
            test_explore_finds_buffer_overflow_block;
          Alcotest.test_case "clean pipeline" `Quick test_explore_clean_pipeline;
          Alcotest.test_case "rendezvous pairing" `Quick
            test_explore_rendezvous_pairing;
          Alcotest.test_case "label mismatch" `Quick
            test_explore_label_mismatch_deadlock;
          Alcotest.test_case "budget" `Quick test_explore_budget;
          Alcotest.test_case "trace" `Quick test_explore_trace_is_replayable;
          qt prop_explore_matched_sequences_clean;
          qt prop_explore_truncated_consumer_deadlocks ] );
      ( "gtype",
        [ Alcotest.test_case "roles + wf" `Quick test_gtype_roles_wf;
          Alcotest.test_case "projection compatible" `Quick
            test_gtype_projection_pairwise_compatible;
          Alcotest.test_case "unmergeable rejected" `Quick
            test_gtype_unmergeable_rejected;
          Alcotest.test_case "recursion" `Quick
            test_gtype_recursion_projection ] ) ]

