(* Tests for the shared-memory baseline: Shm cells, locks, rwlocks,
   traps, signals, FlexSC. *)

module Machine = Chorus_machine.Machine
module Policy = Chorus_sched.Policy
module Runtime = Chorus.Runtime
module Runstats = Chorus.Runstats
module Fiber = Chorus.Fiber
module Shm = Chorus_baseline.Shm
module Lock = Chorus_baseline.Lock
module Rwlock = Chorus_baseline.Rwlock
module Trap = Chorus_baseline.Trap
module Signals = Chorus_baseline.Signals
module Flexsc = Chorus_baseline.Flexsc
module Machipc = Chorus_baseline.Machipc

let run ?(cores = 8) ?(policy = Policy.round_robin ()) main =
  Runtime.run (Runtime.config ~policy (Machine.mesh ~cores)) main

(* ------------------------------------------------------------------ *)
(* Shm                                                                 *)

let test_shm_roundtrip () =
  let (_ : Runstats.t) =
    run (fun () ->
        let cell = Shm.create 10 in
        Alcotest.(check int) "read" 10 (Shm.read cell);
        Shm.write cell 20;
        Alcotest.(check int) "after write" 20 (Shm.read cell);
        let old = Shm.update cell (fun x -> x + 1) in
        Alcotest.(check int) "update returns old" 20 old;
        Alcotest.(check int) "updated" 21 (Shm.peek cell))
  in
  ()

let test_shm_remote_access_costs () =
  (* two fibers on distant cores bouncing a cell is slower than one
     fiber hammering it locally *)
  let bounce same_core =
    run ~cores:64 (fun () ->
        let cell = Shm.create 0 in
        let c1 = 0 and c2 = if same_core then 0 else 63 in
        let a =
          Fiber.spawn ~on:c1 (fun () ->
              for _ = 1 to 200 do
                ignore (Shm.update cell (fun x -> x + 1));
                Fiber.yield ()
              done)
        in
        let b =
          Fiber.spawn ~on:c2 (fun () ->
              for _ = 1 to 200 do
                ignore (Shm.update cell (fun x -> x + 1));
                Fiber.yield ()
              done)
        in
        ignore (Fiber.join a);
        ignore (Fiber.join b))
  in
  let local = bounce true and remote = bounce false in
  Alcotest.(check bool) "line bouncing costs" true
    (remote.Runstats.makespan > local.Runstats.makespan)

(* ------------------------------------------------------------------ *)
(* Lock                                                                *)

let test_lock_mutual_exclusion () =
  let (_ : Runstats.t) =
    run (fun () ->
        let l = Lock.create () in
        let inside = ref 0 and max_inside = ref 0 and total = ref 0 in
        let fibers =
          List.init 16 (fun _ ->
              Fiber.spawn (fun () ->
                  for _ = 1 to 25 do
                    Lock.with_lock l (fun () ->
                        incr inside;
                        if !inside > !max_inside then max_inside := !inside;
                        (* a suspension inside the critical section must
                           not admit anyone else *)
                        Fiber.yield ();
                        incr total;
                        decr inside)
                  done))
        in
        List.iter (fun f -> ignore (Fiber.join f)) fibers;
        Alcotest.(check int) "never two holders" 1 !max_inside;
        Alcotest.(check int) "all sections ran" 400 !total;
        Alcotest.(check int) "acquisitions counted" 400 (Lock.acquisitions l);
        Alcotest.(check bool) "some contention" true (Lock.contended l > 0))
  in
  ()

let test_lock_fifo_handoff () =
  let (_ : Runstats.t) =
    run (fun () ->
        let l = Lock.create () in
        let order = ref [] in
        Lock.acquire l;
        let fibers =
          List.init 4 (fun i ->
              let f =
                Fiber.spawn (fun () ->
                    Lock.acquire l;
                    order := i :: !order;
                    Lock.release l)
              in
              (* serialize arrival order *)
              Fiber.sleep 1_000;
              f)
        in
        Fiber.sleep 10_000;
        Lock.release l;
        List.iter (fun f -> ignore (Fiber.join f)) fibers;
        Alcotest.(check (list int)) "fifo order" [ 0; 1; 2; 3 ]
          (List.rev !order))
  in
  ()

let test_lock_release_by_non_holder_rejected () =
  let (_ : Runstats.t) =
    run (fun () ->
        let l = Lock.create ~label:"guard" () in
        Lock.acquire l;
        let f =
          Fiber.spawn (fun () ->
              match Lock.release l with
              | () -> Alcotest.fail "non-holder released"
              | exception Invalid_argument _ -> ())
        in
        ignore (Fiber.join f);
        Lock.release l)
  in
  ()

let test_lock_skips_killed_waiter () =
  let (_ : Runstats.t) =
    run (fun () ->
        let l = Lock.create () in
        Lock.acquire l;
        let got = ref false in
        let victim = Fiber.spawn (fun () -> Lock.with_lock l (fun () -> ())) in
        Fiber.sleep 1_000;
        let healthy =
          Fiber.spawn (fun () -> Lock.with_lock l (fun () -> got := true))
        in
        Fiber.sleep 1_000;
        Fiber.kill victim;
        Fiber.sleep 1_000;
        Lock.release l;
        ignore (Fiber.join healthy);
        Alcotest.(check bool) "healthy waiter got the lock" true !got)
  in
  ()

let test_lock_contention_scales_cost () =
  (* the contention penalty is the time spent parked waiting for the
     convoy: mean wait per acquisition must grow with waiters *)
  let go waiters =
    let wait = ref 0.0 in
    let (_ : Runstats.t) =
      run ~cores:64 (fun () ->
          let l = Lock.create () in
          let fibers =
            List.init waiters (fun _ ->
                Fiber.spawn (fun () ->
                    for _ = 1 to 20 do
                      Lock.with_lock l (fun () -> Fiber.work 200)
                    done))
          in
          List.iter (fun f -> ignore (Fiber.join f)) fibers;
          wait :=
            float_of_int (Lock.wait_cycles l)
            /. float_of_int (Lock.acquisitions l))
    in
    !wait
  in
  let few = go 2 and many = go 32 in
  Alcotest.(check bool)
    (Printf.sprintf "contention penalty (%.0f vs %.0f)" many few)
    true (many > 2.0 *. few)

(* ------------------------------------------------------------------ *)
(* Rwlock                                                              *)

let test_rwlock_readers_parallel_writers_exclusive () =
  let (_ : Runstats.t) =
    run (fun () ->
        let rw = Rwlock.create () in
        let readers_in = ref 0 and max_readers = ref 0 in
        let writer_in = ref false in
        let violations = ref 0 in
        let reader () =
          Rwlock.with_read rw (fun () ->
              incr readers_in;
              if !writer_in then incr violations;
              if !readers_in > !max_readers then max_readers := !readers_in;
              Fiber.yield ();
              decr readers_in)
        in
        let writer () =
          Rwlock.with_write rw (fun () ->
              if !readers_in > 0 || !writer_in then incr violations;
              writer_in := true;
              Fiber.yield ();
              writer_in := false)
        in
        let fibers =
          List.init 24 (fun i ->
              Fiber.spawn (fun () ->
                  for _ = 1 to 10 do
                    if i mod 4 = 0 then writer () else reader ()
                  done))
        in
        List.iter (fun f -> ignore (Fiber.join f)) fibers;
        Alcotest.(check int) "no rw violations" 0 !violations;
        Alcotest.(check bool) "readers overlapped" true (!max_readers > 1))
  in
  ()

(* ------------------------------------------------------------------ *)
(* Trap, Signals, Flexsc                                               *)

let test_trap_charges () =
  let bare = run (fun () -> Fiber.work 1_000) in
  let trapped =
    run (fun () ->
        for _ = 1 to 10 do
          Trap.syscall (fun () -> Fiber.work 100)
        done)
  in
  (* 10 x (2 x 150) = 3000 extra cycles at least *)
  Alcotest.(check bool) "mode switches cost" true
    (trapped.Runstats.makespan > bare.Runstats.makespan + 2_500)

let test_signals_interrupt_restart () =
  let (_ : Runstats.t) =
    run (fun () ->
        let p = Signals.create () in
        let handled = ref 0 in
        let worker =
          Fiber.spawn (fun () ->
              Signals.interruptible_syscall p ~work:10_000)
        in
        Fiber.sleep 2_000;
        Signals.deliver p ~handler:(fun () -> incr handled);
        ignore (Fiber.join worker);
        Alcotest.(check int) "handler ran" 1 !handled;
        Alcotest.(check bool) "progress was wasted" true
          (Signals.wasted_cycles p > 0);
        Alcotest.(check int) "delivered" 1 (Signals.delivered p))
  in
  ()

let test_signals_wait () =
  let (_ : Runstats.t) =
    run (fun () ->
        let p = Signals.create () in
        let woke = ref false in
        let sleeper =
          Fiber.spawn (fun () ->
              Signals.wait_signal p;
              woke := true)
        in
        Fiber.sleep 5_000;
        Alcotest.(check bool) "still parked" false !woke;
        Signals.deliver p ~handler:(fun () -> ());
        ignore (Fiber.join sleeper);
        Alcotest.(check bool) "woken by signal" true !woke)
  in
  ()

let test_flexsc_batches () =
  let (_ : Runstats.t) =
    run (fun () ->
        let page = Flexsc.create ~batch:4 () in
        let ran = ref 0 in
        for _ = 1 to 10 do
          Flexsc.submit page (fun () -> incr ran)
        done;
        (* 8 ran via two auto-flushes; 2 pending *)
        Alcotest.(check int) "auto flushes" 2 (Flexsc.traps page);
        Alcotest.(check int) "batched so far" 8 !ran;
        Flexsc.flush page;
        Alcotest.(check int) "drained" 10 !ran;
        Alcotest.(check int) "one more trap" 3 (Flexsc.traps page);
        Flexsc.flush page;
        Alcotest.(check int) "empty flush is free" 3 (Flexsc.traps page))
  in
  ()

let test_flexsc_cheaper_than_traps () =
  let traps =
    run (fun () ->
        for _ = 1 to 64 do
          Trap.syscall (fun () -> Fiber.work 50)
        done)
  in
  let flex =
    run (fun () ->
        let page = Flexsc.create ~batch:32 () in
        for _ = 1 to 64 do
          Flexsc.submit page (fun () -> Fiber.work 50)
        done;
        Flexsc.flush page)
  in
  Alcotest.(check bool) "batching wins" true
    (flex.Runstats.makespan < traps.Runstats.makespan)

let test_mach_port_roundtrip () =
  let (_ : Runstats.t) =
    run (fun () ->
        let port = Machipc.Port.create () in
        let _srv =
          Fiber.spawn ~daemon:true (fun () ->
              let rec loop () =
                let x, reply = Machipc.Port.recv port in
                Machipc.Port.send reply (x * 10);
                loop ()
              in
              loop ())
        in
        Alcotest.(check int) "rpc" 70 (Machipc.Port.rpc port 7))
  in
  ()

let test_l4_sync_roundtrip () =
  let (_ : Runstats.t) =
    run (fun () ->
        let gate = Machipc.Sync.create () in
        let _srv =
          Fiber.spawn ~daemon:true (fun () ->
              Machipc.Sync.serve gate (fun x -> x - 1))
        in
        Alcotest.(check int) "call" 41 (Machipc.Sync.call gate 42))
  in
  ()

let test_ipc_weight_ordering () =
  (* channels < L4 < Mach must hold for any sane cost vector *)
  let time f =
    let s = run f in
    s.Runstats.makespan
  in
  let n = 200 in
  let chan =
    time (fun () ->
        let ep = Chorus.Rpc.endpoint () in
        let _s =
          Fiber.spawn ~daemon:true (fun () ->
              Chorus.Rpc.serve ep (fun x -> x))
        in
        for i = 1 to n do
          ignore (Chorus.Rpc.call ep i)
        done)
  in
  let l4 =
    time (fun () ->
        let g = Machipc.Sync.create () in
        let _s =
          Fiber.spawn ~daemon:true (fun () -> Machipc.Sync.serve g (fun x -> x))
        in
        for i = 1 to n do
          ignore (Machipc.Sync.call g i)
        done)
  in
  let mach =
    time (fun () ->
        let p = Machipc.Port.create () in
        let _s =
          Fiber.spawn ~daemon:true (fun () ->
              let rec loop () =
                let x, reply = Machipc.Port.recv p in
                Machipc.Port.send reply x;
                loop ()
              in
              loop ())
        in
        for i = 1 to n do
          ignore (Machipc.Port.rpc p i)
        done)
  in
  Alcotest.(check bool)
    (Printf.sprintf "chan(%d) < l4(%d)" chan l4)
    true (chan < l4);
  Alcotest.(check bool)
    (Printf.sprintf "l4(%d) < mach(%d)" l4 mach)
    true (l4 < mach)

let () =
  Alcotest.run "chorus-baseline"
    [ ( "shm",
        [ Alcotest.test_case "roundtrip" `Quick test_shm_roundtrip;
          Alcotest.test_case "remote access costs" `Quick
            test_shm_remote_access_costs ] );
      ( "lock",
        [ Alcotest.test_case "mutual exclusion" `Quick
            test_lock_mutual_exclusion;
          Alcotest.test_case "fifo handoff" `Quick test_lock_fifo_handoff;
          Alcotest.test_case "non-holder rejected" `Quick
            test_lock_release_by_non_holder_rejected;
          Alcotest.test_case "skips killed waiter" `Quick
            test_lock_skips_killed_waiter;
          Alcotest.test_case "contention cost" `Quick
            test_lock_contention_scales_cost ] );
      ( "rwlock",
        [ Alcotest.test_case "readers parallel, writers exclusive" `Quick
            test_rwlock_readers_parallel_writers_exclusive ] );
      ( "trap-signals-flexsc",
        [ Alcotest.test_case "trap charges" `Quick test_trap_charges;
          Alcotest.test_case "signal interrupt+restart" `Quick
            test_signals_interrupt_restart;
          Alcotest.test_case "sigsuspend" `Quick test_signals_wait;
          Alcotest.test_case "flexsc batches" `Quick test_flexsc_batches;
          Alcotest.test_case "flexsc cheaper" `Quick
            test_flexsc_cheaper_than_traps ] );
      ( "ipc-weights",
        [ Alcotest.test_case "mach port roundtrip" `Quick
            test_mach_port_roundtrip;
          Alcotest.test_case "l4 sync roundtrip" `Quick
            test_l4_sync_roundtrip;
          Alcotest.test_case "weight ordering" `Quick
            test_ipc_weight_ordering ] ) ]
