(* A replicated key-value cluster over a lossy interconnect.

   The paper notes its kernel design "is structurally more similar to
   a client/server network application or to a cluster environment
   than to either traditional kernel design".  This example runs that
   application on the same primitives: a primary KV node replicating
   synchronously to a backup, four client nodes hammering it — over a
   fabric that drops 10% of frames.  Retransmission is a choice
   timeout arm; duplicate suppression keeps puts exactly-once.

   Run with:  dune exec examples/netkv_cluster.exe *)

module Machine = Chorus_machine.Machine
module Policy = Chorus_sched.Policy
module Runtime = Chorus.Runtime
module Fiber = Chorus.Fiber
module Fabric = Chorus_net.Fabric
module Stack = Chorus_net.Stack
module Netkv = Chorus_net.Netkv

let () =
  let stats =
    Runtime.run
      (Runtime.config ~policy:(Policy.round_robin ()) ~seed:4
         (Machine.mesh ~cores:32))
      (fun () ->
        let net = Fabric.create ~latency:8_000 ~loss:0.10 ~seed:2 () in
        let node () = Stack.create net (Fabric.attach net ()) in
        let primary = node () and backup = node () in
        let backup_srv = Netkv.start_server backup ~port:100 in
        let primary_srv =
          Netkv.start_server ~backup:(Stack.addr backup) primary ~port:100
        in
        let clients = List.init 4 (fun _ -> node ()) in
        let ok = ref 0 and failed = ref 0 in
        let workers =
          List.mapi
            (fun id st ->
              Fiber.spawn ~label:(Printf.sprintf "client-%d" id) (fun () ->
                  let kv =
                    Netkv.client st ~server_addr:(Stack.addr primary)
                      ~port:100
                  in
                  for i = 1 to 25 do
                    let k = Printf.sprintf "user:%d:%d" id i in
                    if Netkv.put kv k (string_of_int (i * i)) then begin
                      match Netkv.get kv k with
                      | `Ok (Some v) when v = string_of_int (i * i) ->
                        incr ok
                      | `Ok _ | `Net_fail -> incr failed
                    end
                    else incr failed
                  done))
            clients
        in
        List.iter (fun f -> ignore (Fiber.join f)) workers;
        Printf.printf "cluster results over a 10%%-loss fabric:\n";
        Printf.printf "  put+get round trips ok : %d\n" !ok;
        Printf.printf "  failed                 : %d\n" !failed;
        Printf.printf "  primary puts served    : %d\n"
          (Netkv.puts_served primary_srv);
        Printf.printf "  backup replications    : %d\n"
          (Netkv.replications backup_srv);
        Printf.printf "  frames sent/dropped    : %d / %d\n"
          (Fabric.frames_sent net) (Fabric.frames_dropped net);
        let rs = Stack.rel_stats (List.hd clients) in
        Printf.printf "  client0 retransmissions: %d (of %d calls)\n"
          rs.Stack.retransmissions rs.Stack.calls)
  in
  Printf.printf "\nsimulated time: %d cycles, %d messages\n"
    stats.Chorus.Runstats.makespan stats.Chorus.Runstats.msgs
