(* The full benchmark harness.

   Part 1 regenerates every "table/figure" of the evaluation (the
   paper is a position paper with no numbered exhibits; DESIGN.md S3
   maps each experiment id to the claim it tests).  Experiments run in
   quick mode here so the whole suite completes in a couple of minutes;
   `bin/chorus_sim run --full` produces the big sweeps.

   Part 2 is a Bechamel micro-benchmark suite over the runtime
   primitives (host-side cost of simulating spawn / send / choice /
   engine events) — one Test.make per experiment family, all in this
   one executable, so simulator performance regressions are visible.

   Part 3 writes BENCH_obs.json: the bechamel estimates plus the
   virtual makespans of fixed scenarios with observability off and on,
   so a driver can check both host-side overhead and that metrics /
   tracing never perturb virtual time.

   Usage: main.exe [--tables-only | --bechamel-only] *)

module Experiments = Chorus_experiments.Experiments
module Machine = Chorus_machine.Machine
module Runtime = Chorus.Runtime
module Fiber = Chorus.Fiber
module Chan = Chorus.Chan

(* ------------------------------------------------------------------ *)
(* Part 1: experiment tables                                           *)

let run_tables () =
  print_endline "=====================================================";
  print_endline " Chorus evaluation: all experiments (quick mode)";
  print_endline "=====================================================\n";
  List.iter (Experiments.run_and_print ~quick:true ~seed:42) Experiments.all

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel micro-benchmarks of the simulator itself           *)

let machine = lazy (Machine.mesh ~cores:16)

let sim body () =
  ignore
    (Runtime.run (Runtime.config ~seed:1 (Lazy.force machine)) body)

let bench_spawn =
  Bechamel.Test.make ~name:"e1:spawn+join x100"
    (Bechamel.Staged.stage
       (sim (fun () ->
            for _ = 1 to 100 do
              ignore (Fiber.join (Fiber.spawn (fun () -> ())))
            done)))

let bench_rendezvous =
  Bechamel.Test.make ~name:"e1:rendezvous ping-pong x100"
    (Bechamel.Staged.stage
       (sim (fun () ->
            let c = Chan.rendezvous () and r = Chan.rendezvous () in
            let _echo =
              Fiber.spawn ~daemon:true (fun () ->
                  let rec loop () =
                    Chan.send r (Chan.recv c);
                    loop ()
                  in
                  loop ())
            in
            for i = 1 to 100 do
              Chan.send c i;
              ignore (Chan.recv r)
            done)))

let bench_buffered =
  Bechamel.Test.make ~name:"e5:buffered stream x1000"
    (Bechamel.Staged.stage
       (sim (fun () ->
            let c = Chan.buffered 32 in
            let consumer =
              Fiber.spawn (fun () ->
                  for _ = 1 to 1000 do
                    ignore (Chan.recv c)
                  done)
            in
            for i = 1 to 1000 do
              Chan.send c i
            done;
            ignore (Fiber.join consumer))))

let bench_choice =
  Bechamel.Test.make ~name:"e6:choice over 8 channels x100"
    (Bechamel.Staged.stage
       (sim (fun () ->
            let chans = Array.init 8 (fun _ -> Chan.buffered 4) in
            let _feeder =
              Fiber.spawn ~daemon:true (fun () ->
                  let i = ref 0 in
                  let rec loop () =
                    Chan.send chans.(!i mod 8) !i;
                    incr i;
                    loop ()
                  in
                  loop ())
            in
            for _ = 1 to 100 do
              ignore
                (Chan.choose
                   (Array.to_list
                      (Array.map (fun c -> Chan.recv_case c (fun v -> v))
                         chans)))
            done)))

(* the same workload with tracing+metrics off vs on: the "off" run is
   the hot path the observability layer must not tax *)
let plumbing () =
  let c = Chan.buffered 16 in
  let consumer =
    Fiber.spawn (fun () ->
        for _ = 1 to 500 do
          ignore (Chan.recv c)
        done)
  in
  for i = 1 to 500 do
    Chan.send c i
  done;
  ignore (Fiber.join consumer)

let bench_obs_off =
  Bechamel.Test.make ~name:"obs:stream x500 (obs off)"
    (Bechamel.Staged.stage (sim plumbing))

let bench_obs_on =
  Bechamel.Test.make ~name:"obs:stream x500 (ring+metrics)"
    (Bechamel.Staged.stage (fun () ->
         let reg = Chorus_obs.Metrics.create () in
         Chorus_obs.Metrics.install reg;
         let sink, _get, _dropped = Chorus.Trace.ring ~capacity:4096 () in
         ignore
           (Runtime.run
              (Runtime.config ~trace:sink ~seed:1 (Lazy.force machine))
              plumbing);
         Chorus_obs.Metrics.uninstall ()))

let bench_sleep_timers =
  Bechamel.Test.make ~name:"engine:1000 timers"
    (Bechamel.Staged.stage
       (sim (fun () ->
            let fibers =
              List.init 100 (fun i ->
                  Fiber.spawn (fun () ->
                      for _ = 1 to 10 do
                        Fiber.sleep (100 + i)
                      done))
            in
            List.iter (fun f -> ignore (Fiber.join f)) fibers)))

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  print_endline "\n=====================================================";
  print_endline " Bechamel: host-side cost of the simulator primitives";
  print_endline "=====================================================\n";
  let tests =
    Test.make_grouped ~name:"chorus"
      [ bench_spawn; bench_rendezvous; bench_buffered; bench_choice;
        bench_sleep_timers; bench_obs_off; bench_obs_on ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) -> rows := (name, est) :: !rows
      | Some [] | None -> ())
    results;
  Printf.printf "%-40s %16s\n" "primitive benchmark" "host ns/run";
  Printf.printf "%s\n" (String.make 57 '-');
  List.iter
    (fun (name, est) -> Printf.printf "%-40s %16.0f\n" name est)
    (List.sort compare !rows);
  List.sort compare !rows

(* ------------------------------------------------------------------ *)
(* Part 3: machine-readable results                                    *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* deterministic virtual makespans: the kernel file workload from
   `chorus_sim trace`, with observability off and on — the two must be
   equal, observability never advances virtual time *)
let fixed_scenarios () =
  let module Kernel = Chorus_kernel.Kernel in
  let module Msgvfs = Chorus_kernel.Msgvfs in
  let workload () =
    let kern = Kernel.boot Kernel.default_config in
    let fs = Kernel.fs_client kern in
    ignore (Msgvfs.mkdir fs "/tmp");
    ignore (Msgvfs.create fs "/tmp/hello");
    match Msgvfs.open_ fs "/tmp/hello" with
    | Ok fd ->
      ignore (Msgvfs.write fs fd ~off:0 "bench!");
      ignore (Msgvfs.read fs fd ~off:0 ~len:6)
    | Error _ -> ()
  in
  let mesh = Chorus_machine.Machine.mesh ~cores:8 in
  let off = Runtime.run (Runtime.config ~seed:1 mesh) workload in
  let reg = Chorus_obs.Metrics.create () in
  Chorus_obs.Metrics.install reg;
  let sink, _get, _dropped = Chorus.Trace.ring ~capacity:65536 () in
  let on = Runtime.run (Runtime.config ~trace:sink ~seed:1 mesh) workload in
  Chorus_obs.Metrics.uninstall ();
  [ ("kernel_file_ops_obs_off", off.Chorus.Runstats.makespan);
    ("kernel_file_ops_obs_on", on.Chorus.Runstats.makespan) ]

let write_json file bech_rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"chorus-bench-obs-v1\",\n";
  Buffer.add_string b "  \"bechamel_ns_per_run\": {";
  List.iteri
    (fun i (name, est) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n    \"%s\": %.1f" (json_escape name) est))
    bech_rows;
  Buffer.add_string b "\n  },\n  \"virtual_makespans\": {";
  List.iteri
    (fun i (name, cycles) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n    \"%s\": %d" (json_escape name) cycles))
    (fixed_scenarios ());
  Buffer.add_string b "\n  }\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\nwrote %s\n" file

(* ------------------------------------------------------------------ *)
(* Part 4: cluster macro-benchmark                                     *)

(* Steady-state put cost and the data-plane failover window as the
   replica group widens, plus the E24 hot-path curves (throughput/p99
   vs offered load per posture, and the batched-vs-plain write path at
   saturation), in virtual cycles (so the numbers are exact and
   reproducible, not host-dependent).  Reuses the E20/E24 drivers. *)
let write_cluster_json file =
  let module E20 = Chorus_experiments.E20_cluster in
  let module E24 = Chorus_experiments.E24_hotpath in
  print_endline "\n=====================================================";
  print_endline " Cluster: throughput and failover window (virtual)";
  print_endline "=====================================================\n";
  let rows =
    List.map
      (fun nnodes ->
        let window, tput_cycles, acked, ops =
          E20.run_failover ~quick:true ~seed:42 ~nnodes
        in
        let per_put = tput_cycles / max 1 ops in
        Printf.printf
          "N=%d  acked %d/%d  cycles/put %d  failover window %s\n" nnodes
          acked ops per_put
          (if window = 0 then "n/a" else string_of_int window);
        (nnodes, window, per_put, acked, ops))
      [ 1; 3; 5 ]
  in
  print_endline "\nhot path: offered-load sweep (3 replicas, 90% reads)";
  let sweep =
    List.concat_map
      (fun offered ->
        List.map
          (fun (batched, leased) ->
            let p =
              E24.run_point ~quick:true ~seed:42 ~replicas:3 ~batched
                ~leased ~offered ~read_fraction:0.9 ()
            in
            Printf.printf
              "  offered %4d  batched=%b leased=%b  tput %.0f  p99 %d\n"
              offered batched leased p.E24.throughput p.E24.p99;
            p)
          [ (false, false); (true, false); (false, true); (true, true) ])
      [ 300; 1200 ]
  in
  print_endline "\nhot path: write-only at saturation (slow fabric)";
  let writes =
    List.concat_map
      (fun replicas ->
        List.map
          (fun batched ->
            let p =
              E24.run_point ~quick:true ~seed:42 ~replicas ~batched
                ~leased:false ~offered:16_000 ~read_fraction:0.0
                ~nclients:24 ~depth:16 ~duration:600_000
                ~call_timeout:800_000 ~propose_timeout:600_000
                ~fabric_latency:20_000 ()
            in
            Printf.printf "  replicas %d  batched=%b  cycles/put %d\n"
              replicas batched p.E24.cycles_per_op;
            p)
          [ false; true ])
      [ 1; 3; 5 ]
  in
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"schema\": \"chorus-bench-cluster-v2\",\n";
  Buffer.add_string b "  \"seed\": 42,\n";
  Buffer.add_string b "  \"replica_groups\": [";
  List.iteri
    (fun i (n, window, per_put, acked, ops) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    { \"nodes\": %d, \"puts_acked\": %d, \"puts_issued\": %d, \
            \"cycles_per_put\": %d, \"failover_window_cycles\": %s }"
           n acked ops per_put
           (if window = 0 then "null" else string_of_int window)))
    rows;
  Buffer.add_string b "\n  ],\n";
  let point_json (p : E24.point) =
    Printf.sprintf
      "\n    { \"offered_per_mcycle\": %d, \"replicas\": %d, \
       \"batched\": %b, \"leased\": %b, \"completed\": %d, \
       \"failed\": %d, \"throughput_per_mcycle\": %.1f, \
       \"cycles_per_op\": %d, \"p50_cycles\": %d, \"p99_cycles\": %d, \
       \"put_p99_cycles\": %d, \"appends\": %d, \"group_commits\": %d, \
       \"leased_reads\": %d }"
      p.E24.offered p.E24.replicas p.E24.batched p.E24.leased
      p.E24.completed p.E24.failed p.E24.throughput p.E24.cycles_per_op
      p.E24.p50 p.E24.p99 p.E24.put_p99 p.E24.appends p.E24.group_commits
      p.E24.leased_reads
  in
  let add_points name points =
    Buffer.add_string b (Printf.sprintf "  \"%s\": [" name);
    List.iteri
      (fun i p ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (point_json p))
      points;
    Buffer.add_string b "\n  ]"
  in
  add_points "hot_path_sweep" sweep;
  Buffer.add_string b ",\n";
  add_points "write_path_saturation" writes;
  Buffer.add_string b "\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\nwrote %s\n" file

(* ------------------------------------------------------------------ *)
(* Part 5: service-plane overload macro-benchmark                      *)

(* Goodput and tail latency for each overload policy as offered load
   sweeps past the service rate, in virtual cycles.  Reuses the E21
   driver. *)
let write_overload_json file =
  let module E21 = Chorus_experiments.E21_overload in
  print_endline "\n=====================================================";
  print_endline " Service plane: overload policies (virtual)";
  print_endline "=====================================================\n";
  let rows =
    List.concat_map
      (fun policy ->
        List.map
          (fun load_pct ->
            let s = E21.measure ~quick:true ~seed:42 ~policy ~load_pct in
            Printf.printf
              "%-12s %3d%%  completed %d/%d  busy %d  p99 %d  \
               goodput/Mcyc %.1f\n"
              s.E21.policy_name load_pct s.E21.completed s.E21.sent
              s.E21.busy s.E21.p99 s.E21.goodput;
            s)
          [ 50; 100; 200 ])
      [ `Block; `Reject; `Shed_oldest ]
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"chorus-bench-overload-v1\",\n";
  Buffer.add_string b "  \"seed\": 42,\n";
  Buffer.add_string b "  \"postures\": [";
  List.iteri
    (fun i (s : Chorus_experiments.E21_overload.sample) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    { \"policy\": \"%s\", \"load_pct\": %d, \"sent\": %d, \
            \"completed\": %d, \"busy\": %d, \"rejected\": %d, \
            \"shed\": %d, \"queue_hwm\": %d, \"p50_cycles\": %d, \
            \"p99_cycles\": %d, \"goodput_per_mcycle\": %.2f }"
           s.policy_name s.load_pct s.sent s.completed s.busy s.rejected
           s.shed s.hwm s.p50 s.p99 s.goodput))
    rows;
  Buffer.add_string b "\n  ]\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\nwrote %s\n" file

(* ------------------------------------------------------------------ *)
(* Part 6: chaos campaign                                              *)

(* The full fault-space campaign at the acceptance scale, plus the
   oracle selftest.  Every field except the host_* lines and runs/sec
   is a pure function of the seed; oracle_violations is the headline
   number and must be 0.

   The campaign runs twice when the domain runner is engaged — once
   sequentially, once across [domains] — and the two reports' campaign
   digests must match exactly (any divergence means the parallel merge
   broke determinism, and the bench aborts).  The host section records
   throughput at both widths; host fields are written one per line
   with a "host_" prefix so bench_guard's strip_host can drop them
   before exact comparison. *)
let write_chaos_json ?(domains = 1) file =
  let module Chaos = Chorus_chaos.Chaos in
  print_endline "\n=====================================================";
  print_endline " Chaos: fault-space campaign with oracles";
  print_endline "=====================================================\n";
  let disk_runs = 160 and kv_runs = 48 and seed = 42 in
  let t0 = Unix.gettimeofday () in
  let r = Chaos.campaign ~disk_runs ~kv_runs ~seed () in
  let dt1 = Unix.gettimeofday () -. t0 in
  let rps1 = float_of_int r.Chaos.runs /. dt1 in
  let rps_n =
    if domains <= 1 then rps1
    else begin
      let t0 = Unix.gettimeofday () in
      let rn = Chaos.campaign ~disk_runs ~kv_runs ~domains ~seed () in
      let dtn = Unix.gettimeofday () -. t0 in
      if not (String.equal rn.Chaos.campaign_digest r.Chaos.campaign_digest)
      then begin
        Printf.eprintf
          "FATAL: %d-domain campaign digest %s != sequential %s\n" domains
          rn.Chaos.campaign_digest r.Chaos.campaign_digest;
        exit 1
      end;
      float_of_int rn.Chaos.runs /. dtn
    end
  in
  let st = Chaos.selftest ~seed in
  Printf.printf
    "runs %d  ops %d  injected %d  violations %d  (%.1f runs/sec @1d, \
     %.1f @%dd host)\n"
    r.Chaos.runs r.Chaos.total_ops r.Chaos.faults_injected
    (List.length r.Chaos.violations)
    rps1 rps_n domains;
  Printf.printf "selftest: caught %b, shrunk to %d faults, replay %b\n"
    st.Chaos.caught st.Chaos.minimal_faults st.Chaos.st_replay_identical;
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"chorus-bench-chaos-v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"seed\": %d,\n" seed);
  Buffer.add_string b
    (Printf.sprintf "  \"disk_runs\": %d,\n  \"kv_runs\": %d,\n" disk_runs
       kv_runs);
  Buffer.add_string b (Printf.sprintf "  \"runs\": %d,\n" r.Chaos.runs);
  Buffer.add_string b
    (Printf.sprintf "  \"client_ops\": %d,\n" r.Chaos.total_ops);
  Buffer.add_string b
    (Printf.sprintf "  \"faults_injected\": %d,\n" r.Chaos.faults_injected);
  Buffer.add_string b "  \"faults_explored\": {";
  List.iteri
    (fun i (kind, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n    \"%s\": %d" kind n))
    r.Chaos.kinds;
  Buffer.add_string b "\n  },\n";
  Buffer.add_string b
    (Printf.sprintf "  \"oracle_violations\": %d,\n"
       (List.length r.Chaos.violations));
  Buffer.add_string b
    (Printf.sprintf "  \"campaign_digest\": \"%s\",\n"
       r.Chaos.campaign_digest);
  Buffer.add_string b
    (Printf.sprintf "  \"runs_per_host_sec\": %.1f,\n" rps1);
  Buffer.add_string b (Printf.sprintf "  \"host_domains\": %d,\n" domains);
  Buffer.add_string b
    (Printf.sprintf "  \"host_runs_per_sec_1d\": %.1f,\n" rps1);
  Buffer.add_string b
    (Printf.sprintf "  \"host_runs_per_sec_nd\": %.1f,\n" rps_n);
  Buffer.add_string b
    (Printf.sprintf "  \"host_speedup\": %.2f,\n" (rps_n /. rps1));
  Buffer.add_string b
    (Printf.sprintf
       "  \"selftest\": { \"caught\": %b, \"minimal_faults\": %d, \
        \"replay_identical\": %b }\n"
       st.Chaos.caught st.Chaos.minimal_faults st.Chaos.st_replay_identical);
  Buffer.add_string b "}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\nwrote %s\n" file

(* ------------------------------------------------------------------ *)
(* Part 7: projected filesystem                                        *)

(* Cold vs warm open+read over the projection, the hydration-storm
   sweep across overload policies (reusing the E23 drivers), and a
   small provider-kill chaos campaign whose headline number —
   placeholder-invariant violations — must be 0.  Every field is in
   virtual cycles and a pure function of the seed, so the guard can
   require this file to reproduce byte-identically. *)
let write_vfs_json file =
  let module E23 = Chorus_experiments.E23_projfs in
  let module Chaos = Chorus_chaos.Chaos in
  print_endline "\n=====================================================";
  print_endline " Projected FS: hydration, name cache, storms (virtual)";
  print_endline "=====================================================\n";
  let o = E23.measure_open ~quick:true ~seed:42 in
  Printf.printf
    "open: %d files  cold p50 %d p99 %d  warm p50 %d p99 %d  hydrations %d\n"
    o.E23.files o.E23.cold_p50 o.E23.cold_p99 o.E23.warm_p50 o.E23.warm_p99
    o.E23.hydrations;
  let storms =
    List.map
      (fun policy ->
        let s = E23.measure_storm ~quick:true ~seed:42 ~policy in
        Printf.printf
          "%-12s readers %d  completed %d  failed %d  p99 %d  \
           goodput/Mcyc %.1f\n"
          s.E23.policy_name s.E23.clients s.E23.completed s.E23.failed
          s.E23.p99 s.E23.goodput;
        s)
      [ `Block; `Reject; `Shed_oldest ]
  in
  let projfs_runs = 12 and seed = 42 in
  let r = Chaos.campaign ~disk_runs:0 ~kv_runs:0 ~projfs_runs ~seed () in
  Printf.printf
    "chaos: %d provider-kill runs  ops %d  injected %d  violations %d\n"
    r.Chaos.runs r.Chaos.total_ops r.Chaos.faults_injected
    (List.length r.Chaos.violations);
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"chorus-bench-vfs-v1\",\n";
  Buffer.add_string b "  \"seed\": 42,\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"open\": { \"files\": %d, \"cold_p50_cycles\": %d, \
        \"cold_p99_cycles\": %d, \"warm_p50_cycles\": %d, \
        \"warm_p99_cycles\": %d, \"hydrations\": %d, \
        \"namecache_hits\": %d, \"namecache_misses\": %d },\n"
       o.E23.files o.E23.cold_p50 o.E23.cold_p99 o.E23.warm_p50
       o.E23.warm_p99 o.E23.hydrations o.E23.nc_hits o.E23.nc_misses);
  Buffer.add_string b "  \"storm\": [";
  List.iteri
    (fun i (s : Chorus_experiments.E23_projfs.storm_sample) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    { \"policy\": \"%s\", \"readers\": %d, \"capacity\": %d, \
            \"completed\": %d, \"failed\": %d, \"rejected\": %d, \
            \"shed\": %d, \"queue_hwm\": %d, \"p99_cycles\": %d, \
            \"makespan_cycles\": %d, \"goodput_per_mcycle\": %.2f }"
           s.E23.policy_name s.E23.clients s.E23.capacity s.E23.completed
           s.E23.failed s.E23.rejected s.E23.shed s.E23.hwm s.E23.p99
           s.E23.makespan s.E23.goodput))
    storms;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"chaos\": { \"projfs_runs\": %d, \"runs\": %d, \
        \"client_ops\": %d, \"faults_injected\": %d, \
        \"placeholder_violations\": %d }\n"
       projfs_runs r.Chaos.runs r.Chaos.total_ops r.Chaos.faults_injected
       (List.length r.Chaos.violations));
  Buffer.add_string b "}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\nwrote %s\n" file

(* ------------------------------------------------------------------ *)
(* Part 8: gray failure                                                *)

(* The E25 posture grid (healthy fabric + gray node, four client
   postures each) plus the gray chaos campaign at acceptance scale.
   The headline numbers: breakers+deadlines p99 under the gray node
   must undercut baseline's, and the campaign's oracle violations must
   be 0.  Everything except host_* is a pure function of the seed. *)
let write_gray_json file =
  let module E25 = Chorus_experiments.E25_gray in
  let module Chaos = Chorus_chaos.Chaos in
  print_endline "\n=====================================================";
  print_endline " Gray failure: breakers, deadlines, liveness oracle";
  print_endline "=====================================================\n";
  let points =
    List.concat_map
      (fun gray ->
        List.map
          (fun (breakers, deadlines) ->
            let p =
              E25.run_point ~quick:true ~seed:42 ~gray ~breakers
                ~deadlines ()
            in
            Printf.printf
              "  gray=%-5b %-18s  done %d  fail %d  p99 %d  max %d  \
               misses %d  trips %d\n"
              gray
              (E25.posture_name ~breakers ~deadlines)
              p.E25.completed p.E25.failed p.E25.p99 p.E25.pmax
              p.E25.misses p.E25.trips;
            p)
          [ (false, false); (false, true); (true, false); (true, true) ])
      [ false; true ]
  in
  let gray_runs = 50 and seed = 42 in
  let t0 = Unix.gettimeofday () in
  let r =
    Chaos.campaign ~disk_runs:0 ~kv_runs:0 ~gray_runs ~seed ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf
    "\nchaos: %d gray runs  ops %d  injected %d  violations %d  \
     (%.1f runs/sec host)\n"
    r.Chaos.runs r.Chaos.total_ops r.Chaos.faults_injected
    (List.length r.Chaos.violations)
    (float_of_int r.Chaos.runs /. dt);
  if r.Chaos.violations <> [] then begin
    List.iter
      (fun v -> Printf.eprintf "VIOLATION: %s\n" v.Chaos.first)
      r.Chaos.violations;
    Printf.eprintf "FATAL: gray campaign must pass every oracle\n";
    exit 1
  end;
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"schema\": \"chorus-bench-gray-v1\",\n";
  Buffer.add_string b "  \"seed\": 42,\n";
  Buffer.add_string b "  \"postures\": [";
  List.iteri
    (fun i (p : E25.point) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    { \"gray\": %b, \"breakers\": %b, \"deadlines\": %b, \
            \"completed\": %d, \"failed\": %d, \"p50_cycles\": %d, \
            \"p99_cycles\": %d, \"max_cycles\": %d, \
            \"deadline_misses\": %d, \"breaker_trips\": %d, \
            \"breaker_skips\": %d, \"link_delayed\": %d }"
           p.E25.gray p.E25.breakers p.E25.deadlines p.E25.completed
           p.E25.failed p.E25.p50 p.E25.p99 p.E25.pmax p.E25.misses
           p.E25.trips p.E25.skips p.E25.link_delayed))
    points;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"chaos\": {\n";
  Buffer.add_string b
    (Printf.sprintf "    \"gray_runs\": %d,\n" gray_runs);
  Buffer.add_string b
    (Printf.sprintf "    \"client_ops\": %d,\n" r.Chaos.total_ops);
  Buffer.add_string b
    (Printf.sprintf "    \"faults_injected\": %d,\n" r.Chaos.faults_injected);
  Buffer.add_string b "    \"faults_explored\": {";
  List.iteri
    (fun i (kind, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n      \"%s\": %d" kind n))
    r.Chaos.kinds;
  Buffer.add_string b "\n    },\n";
  Buffer.add_string b
    (Printf.sprintf "    \"oracle_violations\": %d,\n"
       (List.length r.Chaos.violations));
  Buffer.add_string b
    (Printf.sprintf "    \"campaign_digest\": \"%s\"\n"
       r.Chaos.campaign_digest);
  Buffer.add_string b "  }\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\nwrote %s\n" file

let () =
  let args = Array.to_list Sys.argv in
  (* --domains N: width of the parallel chaos measurement (0 = auto).
     Simulator-side output never depends on it — only host_* lines. *)
  let domains =
    let rec find = function
      | "--domains" :: n :: _ -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> n
        | _ ->
          prerr_endline "--domains expects a non-negative integer";
          exit 2)
      | _ :: rest -> find rest
      | [] -> 1
    in
    match find args with
    | 0 -> Chorus_par.Pool.recommended ()
    | n -> n
  in
  if List.mem "--overload-only" args then
    write_overload_json "BENCH_overload.json"
  else if List.mem "--chaos-only" args then
    write_chaos_json ~domains "BENCH_chaos.json"
  else if List.mem "--vfs-only" args then write_vfs_json "BENCH_vfs.json"
  else if List.mem "--gray-only" args then write_gray_json "BENCH_gray.json"
  else if List.mem "--cluster-only" args then
    write_cluster_json "BENCH_cluster.json"
  else begin
    let tables = not (List.mem "--bechamel-only" args) in
    let bech = not (List.mem "--tables-only" args) in
    if tables then run_tables ();
    if bech then begin
      let rows = run_bechamel () in
      write_json "BENCH_obs.json" rows;
      write_cluster_json "BENCH_cluster.json";
      write_overload_json "BENCH_overload.json";
      write_chaos_json ~domains "BENCH_chaos.json";
      write_vfs_json "BENCH_vfs.json";
      write_gray_json "BENCH_gray.json"
    end
  end
